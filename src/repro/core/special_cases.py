"""Detection of the special valid-trace cases (Section VII-B3, Figs. 14-17).

The Internet census surfaced four kinds of valid traces that the testbed never
produced and that should not be pushed through the classifier:

* **Remaining at 1 Packet** -- after the timeout the window stays at one
  packet for a very long time (Fig. 14).
* **Nonincreasing Window** -- the window never grows during congestion
  avoidance (Fig. 15).
* **Approaching w_timeout** -- the window grows quickly at first and then
  creeps asymptotically towards the pre-timeout window (Fig. 16).
* **Bounded Window** -- the window grows past ``w_timeout`` but is then capped
  by something like the server's send buffer (Fig. 17).

The detectors below work on the post-timeout part of the environment-A trace,
the same data the paper's authors inspected manually.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.trace import ProbeTrace, WindowTrace


class SpecialCase(enum.Enum):
    """The four special valid-trace categories of Table IV."""

    REMAINING_AT_ONE = "remaining_at_1_packet"
    NONINCREASING = "nonincreasing_window"
    APPROACHING = "approaching_w_timeout"
    BOUNDED = "bounded_window"


#: Window value below which a post-timeout trace counts as "stuck at one".
_REMAINING_CEILING = 2.0
#: Relative tolerance used when testing whether the window stopped growing.
_FLAT_TOLERANCE = 0.01
#: Number of trailing rounds that must be flat for the bounded/nonincreasing cases.
_FLAT_ROUNDS = 6


def detect_special_case(probe: ProbeTrace) -> SpecialCase | None:
    """Categorise a probe, or return ``None`` if it looks like a normal trace."""
    return detect_special_case_in_trace(probe.trace_a)


def detect_stalled_case(probe: ProbeTrace) -> SpecialCase | None:
    """Detect the unambiguous cases checked *before* classification.

    "Remaining at 1 Packet" and "Nonincreasing Window" involve a complete
    absence of congestion-avoidance growth, which no algorithm in the training
    set produces; they are filtered out before the probe reaches the random
    forest, as the paper does with its manually identified special traces.
    """
    trace = probe.trace_a
    if not trace.is_valid:
        return None
    windows = np.asarray(trace.post_timeout, dtype=float)
    if len(windows) < _FLAT_ROUNDS:
        return None
    if _is_remaining_at_one(windows):
        return SpecialCase.REMAINING_AT_ONE
    if _is_nonincreasing(windows, trace.w_timeout):
        return SpecialCase.NONINCREASING
    return None


def detect_shape_case(probe: ProbeTrace) -> SpecialCase | None:
    """Detect the shape-based cases checked *after* an unsure classification.

    "Approaching w_t" and "Bounded Window" resemble the plateaus of CUBIC and
    BIC closely enough that an automated detector cannot reliably separate
    them from genuine algorithm behaviour (the paper identified them by manual
    inspection). The reproduction therefore only assigns these categories to
    probes the random forest could not classify confidently; DESIGN.md records
    this substitution for the paper's manual step.
    """
    trace = probe.trace_a
    if not trace.is_valid:
        return None
    windows = np.asarray(trace.post_timeout, dtype=float)
    if len(windows) < _FLAT_ROUNDS:
        return None
    if _is_approaching(windows, trace):
        return SpecialCase.APPROACHING
    if _is_bounded(windows, trace):
        return SpecialCase.BOUNDED
    return None


def detect_special_case_in_trace(trace: WindowTrace) -> SpecialCase | None:
    """Categorise a single valid trace (all four detectors, in priority order)."""
    if not trace.is_valid:
        return None
    windows = np.asarray(trace.post_timeout, dtype=float)
    if len(windows) < _FLAT_ROUNDS:
        return None
    if _is_remaining_at_one(windows):
        return SpecialCase.REMAINING_AT_ONE
    if _is_nonincreasing(windows, trace.w_timeout):
        return SpecialCase.NONINCREASING
    if _is_approaching(windows, trace):
        return SpecialCase.APPROACHING
    if _is_bounded(windows, trace):
        return SpecialCase.BOUNDED
    return None


def _is_remaining_at_one(windows: np.ndarray) -> bool:
    """The window never recovers after the timeout (Fig. 14)."""
    tail = windows[1:]
    return bool(len(tail) > 0 and np.max(tail) <= _REMAINING_CEILING)


def _is_nonincreasing(windows: np.ndarray, w_timeout: int) -> bool:
    """Slow start ends and then the window never grows again (Fig. 15).

    The plateau must start early (more than the trailing ``_FLAT_ROUNDS``
    rounds remain) and stay strictly below the pre-timeout region, otherwise
    it would be a bounded-window case.
    """
    peak_index = int(np.argmax(windows))
    peak = windows[peak_index]
    if peak <= _REMAINING_CEILING or peak > w_timeout:
        return False
    if peak_index > len(windows) - _FLAT_ROUNDS:
        return False
    after_peak = windows[peak_index:]
    return bool(np.all(after_peak <= peak * (1.0 + _FLAT_TOLERANCE))
                and np.max(after_peak) - np.min(after_peak) <= peak * _FLAT_TOLERANCE)


def _is_approaching(windows: np.ndarray, trace: WindowTrace) -> bool:
    """The window creeps asymptotically towards the pre-timeout window (Fig. 16)."""
    w_loss = trace.w_loss
    tail = windows[-_FLAT_ROUNDS:]
    # The window must end up close to the pre-timeout window itself, not just
    # above the emulated-timeout threshold.
    if not 0.90 * w_loss <= tail[-1] <= 1.05 * w_loss:
        return False
    increments = np.diff(windows)
    if np.any(increments < -0.5):
        return False
    # Growth must be decelerating within the congestion-avoidance region
    # (after the window passed half of w_loss, i.e. past any plausible
    # slow start threshold).
    avoidance = windows[windows >= 0.55 * w_loss]
    if len(avoidance) < 5:
        return False
    avoidance_increments = np.diff(avoidance)
    early_growth = float(np.max(avoidance_increments[: max(2, len(avoidance_increments) // 2)]))
    late_growth = float(np.mean(np.abs(avoidance_increments[-3:])))
    return early_growth > 2.0 and late_growth <= max(0.15 * early_growth, 2.0)


def _is_bounded(windows: np.ndarray, trace: WindowTrace) -> bool:
    """The window exceeds ``w_timeout`` and then hits a hard ceiling (Fig. 17)."""
    tail = windows[-_FLAT_ROUNDS:]
    peak = float(np.max(windows))
    if peak <= trace.w_timeout * 1.02:
        return False
    spread = float(np.max(tail) - np.min(tail))
    return spread <= max(1.0, peak * _FLAT_TOLERANCE) and float(np.max(tail)) >= peak * 0.98


def special_case_label(case: SpecialCase) -> str:
    """Human readable label used in Table IV."""
    labels = {
        SpecialCase.REMAINING_AT_ONE: "Remaining at 1 Packet",
        SpecialCase.NONINCREASING: "Nonincreasing Window",
        SpecialCase.APPROACHING: "Approaching w_timeout",
        SpecialCase.BOUNDED: "Bounded Window",
    }
    return labels[case]
