"""Checkpointed, sharded census state on disk.

A census over tens of thousands of servers cannot assume it finishes in one
process lifetime. This module persists a census as a **checkpoint
directory**:

* ``manifest.json`` — the run's identity (seed, config fingerprint, shard
  count, per-shard status) plus the settings needed to rebuild the
  population and classifier on resume. Rewritten atomically after every
  shard.
* ``shard-NNNN.jsonl`` — one append-only JSONL file per shard. Each line is
  either an ``outcome`` record (the serialised
  :class:`~repro.core.results.ServerOutcome` plus its position in the
  population) or the final ``shard-complete`` marker carrying the expected
  record count.

Shard assignment is a **stable function of the run seed and the server id**
(:func:`shard_of`): it never depends on scheduling, backend or which
invocation processed the shard, so any interleaving of ``run`` / crash /
``resume`` converges to the same set of files. Merging sorts outcomes by
their population index, which makes the merged
:class:`~repro.core.results.CensusReport` bit-identical to a monolithic
:meth:`~repro.core.census.CensusRunner.run` over the same population.

Corruption is detected loudly rather than papered over: a truncated JSONL
line, a manifest/config fingerprint mismatch, a duplicate shard completion,
or a record-count mismatch each raise :class:`CheckpointError` with a
message that says which file is bad and what to do about it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.results import CensusReport, ServerOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.census import CensusConfig
    from repro.web.population import ServerPopulation

#: On-disk format version; bumped on any incompatible layout change.
CHECKPOINT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Shard status values stored in the manifest.
SHARD_PENDING = "pending"
SHARD_COMPLETE = "complete"


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, corrupt, or from a different run.

    Besides the human-readable message, carries structured context so
    callers (the CLI, the chaos harness) can point at the offending file and
    print a one-line recovery hint without parsing the message text.

    Attributes:
        path: The file the error is about (``None`` when not file-specific).
        hint: One-line recovery suggestion (``None`` when the message is
            self-contained).
    """

    def __init__(self, message: str, *, path: "str | Path | None" = None,
                 hint: str | None = None):
        """Build the error with optional structured context.

        Args:
            message: The full human-readable description.
            path: The offending file, when one is identifiable.
            hint: One-line recovery suggestion.
        """
        super().__init__(message)
        self.path = Path(path) if path is not None else None
        self.hint = hint


class TornWriteError(CheckpointError):
    """A shard write was (deliberately) cut short mid-file.

    Raised only by fault injection (``torn_checkpoint`` in a
    :class:`~repro.faults.plan.FaultPlan`): the shard file is left truncated
    — exactly what a crash during :meth:`CensusCheckpoint.write_shard` would
    leave — and the manifest still marks the shard pending, so a subsequent
    resume re-runs and rewrites it. Callers simulating crashes catch this
    where a real crash would have killed the process.
    """


def write_json_atomic(path: str | Path, payload: dict) -> None:
    """Durably replace ``path`` with a JSON document (write temp + rename).

    The temp file is fsynced before the rename and the directory is fsynced
    after it, so a crash at any point leaves either the old file or the new
    one — never a torn manifest. Shared by the census checkpoint and the
    experiment artifact store (:mod:`repro.experiments.store`).

    Args:
        path: Destination file path.
        payload: JSON-serialisable manifest content.
    """
    path = Path(path)
    temp = path.with_suffix(path.suffix + ".tmp")
    with open(temp, "w", encoding="utf-8") as stream:
        stream.write(json.dumps(payload, indent=2, sort_keys=True))
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(temp, path)
    # Persist the rename itself, so a power loss cannot leave an empty
    # manifest pointing at durably written data files.
    directory_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


def shard_of(server_id: str, seed: int, num_shards: int) -> int:
    """Stable shard assignment for one server, keyed off the run seed.

    Args:
        server_id: The server's stable identifier (``ServerProfile.server_id``).
        seed: The census seed; different runs shuffle servers differently.
        num_shards: Total number of shards.

    Returns:
        The shard index in ``[0, num_shards)``. Depends only on the
        arguments — never on scheduling, backend, or invocation count.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    digest = hashlib.sha256(f"{seed}:{server_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def shard_assignments(server_ids: list[str], seed: int,
                      num_shards: int) -> list[list[int]]:
    """Partition population indices into shards.

    Args:
        server_ids: Server ids in population order.
        seed: The census seed.
        num_shards: Total number of shards.

    Returns:
        ``num_shards`` lists of population indices; every index appears in
        exactly one list, and each list is in ascending population order.
    """
    shards: list[list[int]] = [[] for _ in range(num_shards)]
    for index, server_id in enumerate(server_ids):
        shards[shard_of(server_id, seed, num_shards)].append(index)
    return shards


# --------------------------------------------------------------- fingerprint
def census_fingerprint(config: "CensusConfig", population: "ServerPopulation",
                       classifier_fingerprint: str | None = None,
                       extra: dict | None = None) -> str:
    """Hash everything that determines a census report's content.

    Execution-only knobs (backend, worker count) are excluded: the report is
    bit-identical across them, so they may legitimately differ between the
    invocation that started a checkpoint and the one that resumes it.

    Args:
        config: The census configuration.
        population: The (possibly not yet generated) server population; its
            config and condition database are hashed, not its records.
        classifier_fingerprint: Optional fingerprint of the trained
            classifier (e.g. :func:`classifier_fingerprint`); pass it so a
            resume with a differently trained forest is rejected.
        extra: Optional caller-specific settings to fold into the hash.

    Returns:
        A hex digest; equal fingerprints guarantee equal reports.
    """
    census_fields = dataclasses.asdict(config)
    census_fields.pop("backend", None)
    census_fields.pop("max_workers", None)
    # task_timeout is a wall-clock execution knob; it cannot change a
    # (deterministic, simulated-time) report, only abort a run.
    census_fields.pop("task_timeout", None)
    # Resilience knobs at their neutral defaults hash exactly like configs
    # that predate them, so old checkpoints stay resumable and fault-free
    # runs write byte-identical manifests. An empty plan injects nothing,
    # so it is as neutral as no plan at all.
    plan = census_fields.get("fault_plan")
    if plan is not None and not plan.get("specs"):
        census_fields["fault_plan"] = None
    neutral = {"fault_plan": None, "probe_deadline": None,
               "max_probe_attempts": 3, "backoff_base": 0.5,
               "backoff_max": 30.0, "scenario_pack": None}
    for name, default in neutral.items():
        if name in census_fields and census_fields[name] == default:
            census_fields.pop(name)
    database = population.condition_database
    payload = {
        "format": CHECKPOINT_FORMAT_VERSION,
        "census": census_fields,
        "population": dataclasses.asdict(population.config),
        "conditions": _condition_database_digest(database),
        "classifier": classifier_fingerprint,
        "extra": extra,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


def classifier_fingerprint(classifier) -> str:
    """Hash a trained :class:`~repro.core.classifier.CaaiClassifier`.

    Covers the classifier's knobs and, when trained, the exact structure of
    every fitted tree, so two classifiers fingerprint equal only if they
    classify every vector identically.

    Args:
        classifier: A :class:`~repro.core.classifier.CaaiClassifier`.

    Returns:
        A hex digest of the classifier's configuration and fitted forest.
    """
    digest = hashlib.sha256()
    digest.update(repr((classifier.n_trees, classifier.max_features,
                        classifier.confidence_threshold,
                        classifier.seed)).encode("utf-8"))
    if classifier.is_trained:
        forest = classifier.forest
        digest.update(repr(forest.classes()).encode("utf-8"))
        for tree in forest._trees:  # noqa: SLF001 - deliberate deep fingerprint
            flat = tree.flat_tree
            for array in (flat.feature, flat.threshold, flat.left, flat.right,
                          flat.prediction, flat.leaf_class_counts):
                digest.update(array.tobytes())
    return digest.hexdigest()


def _condition_database_digest(database) -> str | None:
    if database is None:
        return None
    digest = hashlib.sha256()
    for array in (database.average_rtts, database.rtt_stds, database.loss_rates):
        digest.update(np.asarray(array, dtype=float).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------- the store
class CensusCheckpoint:
    """Manager of one checkpoint directory (manifest plus shard files)."""

    def __init__(self, directory: str | Path, manifest: dict):
        """Bind a manifest to a directory; use :meth:`create` / :meth:`open`.

        Args:
            directory: The checkpoint directory.
            manifest: The parsed manifest dict.
        """
        self.directory = Path(directory)
        self.manifest = manifest

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def ensure_absent(cls, directory: str | Path) -> None:
        """Fail fast if ``directory`` already holds a checkpoint.

        Args:
            directory: The directory a fresh checkpoint is about to use.

        Raises:
            CheckpointError: If a manifest already exists there. Callers
                about to do expensive preparation (classifier training)
                call this first so the error beats the wait.
        """
        manifest_path = Path(directory) / MANIFEST_NAME
        if manifest_path.exists():
            raise CheckpointError(
                f"checkpoint already exists at {manifest_path}; use resume, "
                "or point --checkpoint at an empty directory to start over",
                path=manifest_path,
                hint="use resume, or point --checkpoint at an empty "
                     "directory to start over")

    @classmethod
    def create(cls, directory: str | Path, *, seed: int, num_shards: int,
               fingerprint: str, population_size: int,
               settings: dict | None = None) -> "CensusCheckpoint":
        """Initialise a fresh checkpoint directory.

        Args:
            directory: Target directory; created if missing. Must not
                already contain a manifest.
            seed: The census seed (also keys the shard assignment).
            num_shards: Total number of shards.
            fingerprint: :func:`census_fingerprint` of the run.
            population_size: Number of servers in the population.
            settings: Free-form settings stored verbatim for resume (the CLI
                keeps everything needed to rebuild population + classifier).

        Returns:
            The new checkpoint with every shard pending.

        Raises:
            CheckpointError: If the directory already holds a manifest.
        """
        directory = Path(directory)
        cls.ensure_absent(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        manifest = {
            "format": CHECKPOINT_FORMAT_VERSION,
            "seed": seed,
            "num_shards": num_shards,
            "fingerprint": fingerprint,
            "population_size": population_size,
            "settings": settings or {},
            "shards": {str(i): SHARD_PENDING for i in range(num_shards)},
        }
        checkpoint = cls(directory, manifest)
        checkpoint._write_manifest()
        return checkpoint

    @classmethod
    def open(cls, directory: str | Path) -> "CensusCheckpoint":
        """Open an existing checkpoint directory.

        Args:
            directory: A directory previously initialised by :meth:`create`.

        Returns:
            The checkpoint with its manifest loaded.

        Raises:
            CheckpointError: If the manifest is missing, unreadable, or of an
                unsupported format version.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise CheckpointError(
                f"no checkpoint manifest at {manifest_path}; run a sharded "
                "census first (python -m repro.census run)",
                path=manifest_path,
                hint="run a sharded census first (python -m repro.census run)")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"checkpoint manifest {manifest_path} is not valid JSON "
                f"({error}); the file is corrupt — delete the checkpoint "
                "directory and rerun",
                path=manifest_path,
                hint="delete the checkpoint directory and rerun") from error
        version = manifest.get("format")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint manifest {manifest_path} has format version "
                f"{version!r}, this code reads version "
                f"{CHECKPOINT_FORMAT_VERSION}; rerun the census with a fresh "
                "checkpoint directory",
                path=manifest_path,
                hint="rerun the census with a fresh checkpoint directory")
        return cls(directory, manifest)

    def verify_fingerprint(self, fingerprint: str) -> None:
        """Reject a resume whose configuration differs from the original run.

        Args:
            fingerprint: :func:`census_fingerprint` of the resuming run.

        Raises:
            CheckpointError: If it differs from the manifest's fingerprint.
        """
        recorded = self.manifest.get("fingerprint")
        if recorded != fingerprint:
            raise CheckpointError(
                f"config fingerprint mismatch in {self.directory / MANIFEST_NAME}: "
                f"checkpoint was created with {recorded}, this invocation "
                f"computes {fingerprint}. Resuming with a different census/"
                "population/classifier configuration would silently mix "
                "incompatible results — rerun with the original settings or "
                "start a fresh checkpoint directory",
                path=self.directory / MANIFEST_NAME,
                hint="rerun with the original settings or start a fresh "
                     "checkpoint directory")

    # -------------------------------------------------------------- queries
    @property
    def seed(self) -> int:
        """The census seed recorded at creation time."""
        return int(self.manifest["seed"])

    @property
    def num_shards(self) -> int:
        """Total number of shards of the run."""
        return int(self.manifest["num_shards"])

    @property
    def settings(self) -> dict:
        """The free-form settings dict stored at creation time."""
        return self.manifest.get("settings", {})

    def shard_status(self, shard_index: int) -> str:
        """Status of one shard (``"pending"`` or ``"complete"``)."""
        return self.manifest["shards"][str(shard_index)]

    def pending_shards(self) -> list[int]:
        """Indices of shards that still need to run, in ascending order."""
        return [i for i in range(self.num_shards)
                if self.shard_status(i) != SHARD_COMPLETE]

    def completed_shards(self) -> list[int]:
        """Indices of shards already marked complete, in ascending order."""
        return [i for i in range(self.num_shards)
                if self.shard_status(i) == SHARD_COMPLETE]

    def all_complete(self) -> bool:
        """Whether every shard has completed."""
        return not self.pending_shards()

    def status(self) -> dict:
        """Machine-readable progress summary (what ``status`` prints).

        Returns:
            A dict with seed, shard counts, per-shard status and the stored
            settings.
        """
        return {
            "directory": str(self.directory),
            "seed": self.seed,
            "num_shards": self.num_shards,
            "population_size": self.manifest.get("population_size"),
            "completed_shards": self.completed_shards(),
            "pending_shards": self.pending_shards(),
            "complete": self.all_complete(),
            "fingerprint": self.manifest.get("fingerprint"),
            "settings": self.settings,
        }

    def shard_path(self, shard_index: int) -> Path:
        """Path of one shard's JSONL file."""
        return self.directory / f"shard-{shard_index:04d}.jsonl"

    # -------------------------------------------------------------- writing
    def write_shard(self, shard_index: int,
                    outcomes: list[tuple[int, ServerOutcome]],
                    torn_after: int | None = None) -> None:
        """Persist one completed shard and mark it complete in the manifest.

        The shard file is written as append-only JSONL — one ``outcome`` line
        per server (carrying its population index) followed by a single
        ``shard-complete`` marker with the expected count — and flushed to
        disk before the manifest flips the shard to complete, so a crash
        between the two leaves a consistent "pending" shard that resume
        simply re-runs. The file is opened in truncating mode, so rewriting
        a shard left torn by an earlier crash is self-healing.

        Args:
            shard_index: Which shard the outcomes belong to.
            outcomes: ``(population_index, outcome)`` pairs for every server
                of the shard.
            torn_after: Fault injection only — cut the write after this many
                outcome records (plus half of the next line) and raise
                :class:`TornWriteError`, simulating a crash mid-write. The
                manifest keeps the shard pending.

        Raises:
            CheckpointError: If the shard was already marked complete
                (duplicate shard completion).
            TornWriteError: When ``torn_after`` triggered the simulated
                crash.
        """
        if self.shard_status(shard_index) == SHARD_COMPLETE:
            raise CheckpointError(
                f"duplicate completion of shard {shard_index} in "
                f"{self.directory}: the manifest already marks it complete. "
                "Two writers are racing on the same checkpoint — run one "
                "invocation at a time, or merge what is already there",
                path=self.shard_path(shard_index),
                hint="run one invocation at a time, or merge what is "
                     "already there")
        path = self.shard_path(shard_index)
        with open(path, "w", encoding="utf-8") as stream:
            for count, (index, outcome) in enumerate(outcomes):
                line = json.dumps({"kind": "outcome", "index": index,
                                   "outcome": outcome.to_json_dict()},
                                  sort_keys=True)
                if torn_after is not None and count >= torn_after:
                    # Write half a record with no newline — the exact
                    # footprint of a process dying mid-``write`` — and stop
                    # before the completion marker or the manifest flip.
                    stream.write(line[:max(1, len(line) // 2)])
                    stream.flush()
                    os.fsync(stream.fileno())
                    raise TornWriteError(
                        f"shard file {path} write torn after {count} records "
                        "(injected torn_checkpoint fault); the shard stays "
                        "pending — resume re-runs and rewrites it",
                        path=path,
                        hint="resume the census; the pending shard is "
                             "rewritten from scratch")
                stream.write(line + "\n")
            stream.write(json.dumps({"kind": "shard-complete",
                                     "shard": shard_index,
                                     "count": len(outcomes)}) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        self.manifest["shards"][str(shard_index)] = SHARD_COMPLETE
        self._write_manifest()

    def _write_manifest(self) -> None:
        """Atomically rewrite the manifest (write + fsync temp, then rename)."""
        write_json_atomic(self.directory / MANIFEST_NAME, self.manifest)

    # -------------------------------------------------------------- reading
    def load_shard(self, shard_index: int) -> list[tuple[int, ServerOutcome]]:
        """Read one completed shard back, validating it end to end.

        Args:
            shard_index: Which shard to load.

        Returns:
            The shard's ``(population_index, outcome)`` pairs in file order.

        Raises:
            CheckpointError: On a missing file, a truncated or unparsable
                line, a duplicate ``shard-complete`` marker, a record-count
                mismatch, a duplicate population index, or a marker naming a
                different shard.
        """
        path = self.shard_path(shard_index)
        if not path.exists():
            raise CheckpointError(
                f"shard file {path} is missing although the manifest marks "
                f"shard {shard_index} complete; the checkpoint directory was "
                "partially deleted — rerun the shard by resetting it to "
                "pending in the manifest, or start a fresh checkpoint",
                path=path,
                hint="reset the shard to \"pending\" in the manifest, or "
                     "start a fresh checkpoint")
        raw = path.read_text(encoding="utf-8")
        if raw and not raw.endswith("\n"):
            raise CheckpointError(
                f"shard file {path} ends in a truncated line (no trailing "
                "newline): the writing process died mid-record. Delete the "
                "file and set the shard back to \"pending\" in the manifest "
                "(or start a fresh checkpoint) so resume re-runs it",
                path=path,
                hint="delete the file and set the shard back to \"pending\" "
                     "in the manifest so resume re-runs it")
        outcomes: list[tuple[int, ServerOutcome]] = []
        seen_indices: set[int] = set()
        complete_count: int | None = None
        for line_number, line in enumerate(raw.splitlines(), start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise CheckpointError(
                    f"shard file {path} line {line_number} is not valid JSON "
                    f"({error}); the file is corrupt — delete it and set the "
                    "shard back to \"pending\" in the manifest so resume "
                    "re-runs it",
                    path=path,
                    hint="delete the file and set the shard back to "
                         "\"pending\" in the manifest so resume re-runs "
                         "it") from error
            kind = record.get("kind") if isinstance(record, dict) else None
            try:
                if kind == "outcome":
                    if complete_count is not None:
                        raise CheckpointError(
                            f"shard file {path} has outcome records after the "
                            "shard-complete marker (two writers appended to the "
                            "same shard); delete the file and re-run the shard",
                            path=path,
                            hint="delete the file and re-run the shard")
                    index = int(record["index"])
                    if index in seen_indices:
                        raise CheckpointError(
                            f"shard file {path} repeats population index {index} "
                            f"(line {line_number}); the shard was written twice — "
                            "delete the file and re-run the shard",
                            path=path,
                            hint="delete the file and re-run the shard")
                    seen_indices.add(index)
                    outcomes.append(
                        (index, ServerOutcome.from_json_dict(record["outcome"])))
                elif kind == "shard-complete":
                    if complete_count is not None:
                        raise CheckpointError(
                            f"shard file {path} carries two shard-complete "
                            "markers (duplicate shard completion); delete the "
                            "file and re-run the shard",
                            path=path,
                            hint="delete the file and re-run the shard")
                    marked_shard = record.get("shard")
                    if marked_shard is not None and int(marked_shard) != shard_index:
                        raise CheckpointError(
                            f"shard file {path} carries a completion marker for "
                            f"shard {marked_shard}; files were moved between "
                            "checkpoints — restore the original layout or start "
                            "a fresh checkpoint",
                            path=path,
                            hint="restore the original layout or start a "
                                 "fresh checkpoint")
                    complete_count = int(record["count"])
                else:
                    raise CheckpointError(
                        f"shard file {path} line {line_number} has unknown record "
                        f"kind {kind!r}; the checkpoint was written by an "
                        "incompatible version — start a fresh checkpoint",
                        path=path,
                        hint="start a fresh checkpoint")
            except (KeyError, TypeError, ValueError) as error:
                raise CheckpointError(
                    f"shard file {path} line {line_number} is structurally "
                    f"invalid ({error!r}: missing or malformed field); the "
                    "file is corrupt — delete it and set the shard back to "
                    "\"pending\" in the manifest so resume re-runs it",
                    path=path,
                    hint="delete the file and set the shard back to "
                         "\"pending\" in the manifest so resume re-runs "
                         "it") from error
        if complete_count is None:
            raise CheckpointError(
                f"shard file {path} has no shard-complete marker: the shard "
                "never finished. Set it back to \"pending\" in the manifest "
                "so resume re-runs it",
                path=path,
                hint="set the shard back to \"pending\" in the manifest so "
                     "resume re-runs it")
        if complete_count != len(outcomes):
            raise CheckpointError(
                f"shard file {path} records {len(outcomes)} outcomes but its "
                f"completion marker expects {complete_count}; the file lost "
                "lines — delete it and re-run the shard",
                path=path,
                hint="delete the file and re-run the shard")
        return outcomes

    def merge_report(self, expected_size: int | None = None) -> CensusReport:
        """Merge every completed shard into one :class:`CensusReport`.

        Outcomes are ordered by population index, which makes the merged
        report bit-identical to a monolithic run over the same population.

        Args:
            expected_size: Population size to validate against (defaults to
                the size recorded in the manifest).

        Returns:
            The merged report.

        Raises:
            CheckpointError: If shards are still pending, any shard fails
                validation, the same population index appears in two shards,
                or the merged size does not match the population size.
        """
        pending = self.pending_shards()
        if pending:
            raise CheckpointError(
                f"cannot merge {self.directory}: shards {pending} are still "
                "pending — resume the census first "
                "(python -m repro.census resume)",
                path=self.directory / MANIFEST_NAME,
                hint="resume the census first (python -m repro.census resume)")
        merged: dict[int, ServerOutcome] = {}
        for shard_index in range(self.num_shards):
            for index, outcome in self.load_shard(shard_index):
                if index in merged:
                    raise CheckpointError(
                        f"population index {index} appears in more than one "
                        f"shard of {self.directory}; the shard files are "
                        "inconsistent — start a fresh checkpoint",
                        path=self.shard_path(shard_index),
                        hint="start a fresh checkpoint")
                merged[index] = outcome
        if expected_size is None:
            expected_size = self.manifest.get("population_size")
        if expected_size is not None and len(merged) != expected_size:
            raise CheckpointError(
                f"checkpoint {self.directory} merges {len(merged)} outcomes "
                f"but the population has {expected_size} servers; shard files "
                "are incomplete — re-run the missing shards",
                path=self.directory / MANIFEST_NAME,
                hint="re-run the missing shards")
        report = CensusReport()
        for index in sorted(merged):
            report.add(merged[index])
        return report
