"""The two emulated network environments of CAAI (Section IV-B, Fig. 2).

Both environments acknowledge every data packet (non-delayed ACKs), are free
of loss and reordering up to the emulated timeout, and force a timeout once
the server's window exceeds ``w_timeout`` packets. They differ only in the
emulated round-trip time schedule:

* Environment A: the RTT is always 1.0 s.
* Environment B: before the timeout the RTT is 0.8 s for the first three
  rounds and 1.0 s afterwards; after the timeout it is 0.8 s for the first
  twelve rounds and 1.0 s afterwards.

The RTT step before the timeout exposes window-growth functions that depend on
the RTT (e.g. ILLINOIS, VENO); the step after the timeout exposes
RTT-dependent growth in congestion avoidance (e.g. CTCP-b, YEAH).
"""

from __future__ import annotations

from dataclasses import dataclass

#: ``w_timeout`` values CAAI tries, in decreasing order (Section IV-B).
W_TIMEOUT_LADDER: tuple[int, ...] = (512, 256, 128, 64)

#: Number of post-timeout rounds that make a trace valid (Section IV-E).
VALID_TRACE_ROUNDS_AFTER_TIMEOUT = 18

#: Default emulated RTT (seconds); chosen between the 0.8 s RTT ceiling of
#: real paths (Fig. 4) and the 2.5 s floor of initial retransmission timers.
DEFAULT_EMULATED_RTT = 1.0
#: The shorter RTT used by environment B's varying schedule.
SHORT_EMULATED_RTT = 0.8


@dataclass(frozen=True)
class NetworkEnvironment:
    """One of CAAI's emulated network environments.

    ``rtt_before_timeout(i)`` and ``rtt_after_timeout(i)`` give the emulated
    RTT of the ``i``-th round (0-based) of the respective phase.
    """

    name: str
    #: Round index (0-based) before the timeout at which the RTT switches from
    #: ``short_rtt`` to ``long_rtt``; 0 means the long RTT is used throughout.
    pre_timeout_switch_round: int
    #: Same, for the rounds after the timeout.
    post_timeout_switch_round: int
    long_rtt: float = DEFAULT_EMULATED_RTT
    short_rtt: float = SHORT_EMULATED_RTT

    def rtt_before_timeout(self, round_index: int) -> float:
        if round_index < 0:
            raise ValueError("round index must be non-negative")
        if round_index < self.pre_timeout_switch_round:
            return self.short_rtt
        return self.long_rtt

    def rtt_after_timeout(self, round_index: int) -> float:
        if round_index < 0:
            raise ValueError("round index must be non-negative")
        if round_index < self.post_timeout_switch_round:
            return self.short_rtt
        return self.long_rtt

    def rtt_schedule(self, pre_rounds: int, post_rounds: int) -> list[float]:
        """Full RTT schedule for a probe with the given phase lengths."""
        return ([self.rtt_before_timeout(i) for i in range(pre_rounds)]
                + [self.rtt_after_timeout(i) for i in range(post_rounds)])


#: Environment A: constant 1.0 s RTT (Fig. 2, left).
ENVIRONMENT_A = NetworkEnvironment(
    name="A", pre_timeout_switch_round=0, post_timeout_switch_round=0)

#: Environment B: 0.8 s for 3 rounds / 1.0 s before the timeout, and 0.8 s for
#: 12 rounds / 1.0 s after the timeout (Fig. 2, right).
ENVIRONMENT_B = NetworkEnvironment(
    name="B", pre_timeout_switch_round=3, post_timeout_switch_round=12)

#: The two environments of every CAAI probe, in probing order.
DEFAULT_ENVIRONMENTS: tuple[NetworkEnvironment, ...] = (ENVIRONMENT_A, ENVIRONMENT_B)

# --------------------------------------------------------------------- presets
# Scenario environments beyond the paper's A/B pair. They follow the same
# two-phase schedule contract, so every gatherer accepts them, but they are
# *not* part of DEFAULT_ENVIRONMENTS: the shipped classifier is trained on
# A/B traces only, so these presets are for experiments (feature-sensitivity
# studies, new training sets, the trace gallery), not for the stock census.

#: High bandwidth-delay-product "long fat network" schedule: RTTs near the
#: emulation ceiling throughout, with B-style switch points so RTT-dependent
#: growth is still exposed.
ENVIRONMENT_HIGH_BDP = NetworkEnvironment(
    name="high-bdp", pre_timeout_switch_round=3, post_timeout_switch_round=12,
    long_rtt=2.4, short_rtt=2.0)

#: Wireless-like schedule: a larger RTT step (0.6 s vs 1.0 s) held for more
#: rounds in both phases, exaggerating RTT-dependent window growth.
ENVIRONMENT_LOSSY_WIRELESS = NetworkEnvironment(
    name="lossy-wireless", pre_timeout_switch_round=6, post_timeout_switch_round=6,
    long_rtt=1.0, short_rtt=0.6)

#: Bufferbloat schedule: the path starts at the base RTT and inflates to a
#: queue-dominated RTT once the window has filled the bottleneck buffer
#: (after 2 pre-timeout rounds, 4 post-timeout rounds).
ENVIRONMENT_BUFFERBLOAT = NetworkEnvironment(
    name="bufferbloat", pre_timeout_switch_round=2, post_timeout_switch_round=4,
    long_rtt=2.2, short_rtt=1.0)

#: Cellular schedule (scenario packs): the RTT rides between the packaged
#: cellular trace's good state (~0.1 s RTT grown to the emulation's working
#: point) and its congested state, switching early in both phases the way a
#: cell's load swings within a probe.
ENVIRONMENT_CELLULAR = NetworkEnvironment(
    name="cellular", pre_timeout_switch_round=4, post_timeout_switch_round=8,
    long_rtt=1.6, short_rtt=0.9)

#: Every named environment, the paper's A/B pair plus the scenario presets.
ENVIRONMENT_PRESETS: dict[str, NetworkEnvironment] = {
    environment.name: environment
    for environment in (ENVIRONMENT_A, ENVIRONMENT_B, ENVIRONMENT_HIGH_BDP,
                        ENVIRONMENT_LOSSY_WIRELESS, ENVIRONMENT_BUFFERBLOAT,
                        ENVIRONMENT_CELLULAR)
}


def environment_by_name(name: str) -> NetworkEnvironment:
    """Look up an environment preset by name.

    Args:
        name: ``"A"`` or ``"B"`` (the paper's environments) or one of the
            scenario presets (``"high-bdp"``, ``"lossy-wireless"``,
            ``"bufferbloat"``, ``"cellular"``).

    Returns:
        The matching :class:`NetworkEnvironment`.

    Raises:
        ValueError: If the name is unknown; the message lists every valid
            preset name.
    """
    try:
        return ENVIRONMENT_PRESETS[name]
    except KeyError:
        valid = ", ".join(sorted(ENVIRONMENT_PRESETS))
        raise ValueError(f"unknown network environment {name!r}; "
                         f"valid names: {valid}") from None
