"""The Internet measurement campaign (Section VII-B of the paper).

For every server in the (synthetic) population the census:

1. runs the Web-page searching tool to find a long page on the server;
2. negotiates the smallest MSS the server accepts from CAAI's ladder;
3. probes the server, walking the ``w_timeout`` ladder 512 / 256 / 128 / 64
   until a usable pair of traces is gathered;
4. if no usable trace exists, records the reason (Section VII-B2);
5. otherwise checks for the special trace cases of Section VII-B3 and, when
   none applies, classifies the feature vector with the trained random
   forest, reporting "unsure" when fewer than 40 % of the trees agree.

The aggregated :class:`~repro.core.results.CensusReport` is the reproduction
of Table IV plus the server-information summaries of Section VII-B1.

Execution is organised in two phases so both hot paths scale:

* the **probe phase** (steps 1-4) is embarrassingly parallel; every server
  gets its own deterministic random stream (:func:`repro.parallel.task_seeds`)
  and the work fans out over a :class:`~repro.parallel.ParallelExecutor`
  (serial or multiprocessing -- bit-identical reports either way);
* the **classification phase** (steps 5-6) routes every pending feature
  vector through the forest in one vectorised batch
  (:meth:`~repro.core.classifier.CaaiClassifier.classify_vectors`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.checkpoint import (
    CensusCheckpoint,
    census_fingerprint,
    classifier_fingerprint,
    shard_assignments,
)
from repro.core.classifier import CaaiClassifier
from repro.core.columnar import (
    ColumnarProbeEngine,
    LadderLane,
    columnar_cohort_size,
    columnar_enabled,
)
from repro.core.gather import negotiate_probe_mss, probe_with_w_timeout_ladder
from repro.core.labels import UNSURE
from repro.core.results import CensusReport, ServerOutcome
from repro.core.special_cases import detect_shape_case, detect_stalled_case
from repro.core.trace import InvalidReason, ProbeTrace
from repro.faults import FaultInjected, FaultPlan, FaultyServer, WorkerDeathFault
from repro.parallel import ParallelExecutor, TaskFailure, task_seeds
from repro.web.crawler import PageSearchTool
from repro.web.population import ServerPopulation, ServerRecord


@dataclass
class CensusConfig:
    """Parameters of a census run."""

    seed: int = 42
    #: Seconds CAAI waits between environments (slow start threshold caches).
    wait_between_environments: float = 600.0
    #: Crawl budget of the page searching tool.
    crawler_page_budget: int = 120
    #: Skip the crawler and request the default page directly (ablation).
    use_page_search: bool = True
    #: Execution backend for the probe phase (``serial`` / ``process``).
    backend: str = "serial"
    #: Worker processes for the ``process`` backend (``None`` = one per CPU).
    max_workers: int | None = None
    #: Deterministic fault plan to run the census under (``None`` = no
    #: injection; see docs/ROBUSTNESS.md).
    fault_plan: FaultPlan | None = None
    #: Per-environment probe deadline budget in simulated seconds (``None``
    #: = unbounded). Probes exceeding it are recorded as ``probe_timeout``.
    probe_deadline: float | None = None
    #: Probe attempts per server before a transient fault is given up on.
    max_probe_attempts: int = 3
    #: First retry's maximum backoff in simulated seconds; doubles per
    #: attempt (full jitter, drawn from the attempt's own rng stream).
    backoff_base: float = 0.5
    #: Ceiling on a single backoff draw in simulated seconds.
    backoff_max: float = 30.0
    #: Wall-clock seconds one probe task may run on the ``process`` backend
    #: (``None`` = unbounded). Execution-only: cannot change report content.
    task_timeout: float | None = None
    #: Adversarial scenario pack to probe under, by name (``None`` = no
    #: pack, the exact historic behaviour; see docs/SCENARIOS.md).
    scenario_pack: str | None = None

    def __post_init__(self) -> None:
        if self.scenario_pack is not None:
            # Resolve eagerly so an unknown pack fails at configuration
            # time, not inside a worker process.
            from repro.scenarios import scenario_pack_by_name

            scenario_pack_by_name(self.scenario_pack)
        if self.max_probe_attempts < 1:
            raise ValueError("max_probe_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base and backoff_max must be "
                             "non-negative")
        if self.probe_deadline is not None and self.probe_deadline <= 0:
            raise ValueError("probe_deadline must be positive (or None)")

    def resilience_active(self) -> bool:
        """Whether any probe needs the resilient (retrying) probe path.

        Returns:
            ``True`` when a non-empty fault plan or a probe deadline is
            configured; ``False`` keeps every server on the exact historic
            code path (and rng stream).
        """
        return ((self.fault_plan is not None and not self.fault_plan.empty)
                or self.probe_deadline is not None)


def _prepare_probe(record: ServerRecord, crawler: PageSearchTool,
                   config: CensusConfig) -> tuple[ServerOutcome, int | None]:
    """Steps 1-2 for one server: crawl and MSS negotiation.

    Returns the partially filled outcome plus the negotiated MSS (``None``
    when the server rejects CAAI's whole MSS ladder, in which case the
    outcome is already final).
    """
    server = record.server
    profile = record.profile
    outcome = ServerOutcome(
        server_id=profile.server_id,
        valid=False,
        true_algorithm=profile.effective_algorithm(),
        software=profile.software,
        region=profile.region,
    )

    # Step 1: find a long page (Section IV-E).
    if config.use_page_search:
        crawl = crawler.search(server.site)
        server.probe_path = crawl.best_path
    else:
        server.probe_path = server.site.default_path

    # Step 2: MSS negotiation (Table II).
    mss = negotiate_probe_mss(server)
    if mss is None:
        outcome.invalid_reason = InvalidReason.MSS_REJECTED
        return outcome, None
    outcome.mss = mss
    return outcome, mss


def _finish_probe(outcome: ServerOutcome, probe: ProbeTrace,
                  profile) -> tuple[ServerOutcome, ProbeTrace | None]:
    """Step 4 for one finished probe: validity check and pre-categorisation."""
    if not probe.usable_for_features:
        outcome.invalid_reason = _invalid_reason(probe, profile)
        return outcome, None

    outcome.valid = True
    outcome.w_timeout = probe.w_timeout

    # Traces with no congestion-avoidance growth at all never occur on the
    # testbed and are filtered out before classification.
    special = detect_stalled_case(probe)
    if special is not None:
        outcome.special_case = special
        outcome.category = special.value
        return outcome, None

    return outcome, probe


def probe_server(record: ServerRecord, crawler: PageSearchTool,
                 config: CensusConfig,
                 rng: np.random.Generator) -> tuple[ServerOutcome, ProbeTrace | None]:
    """Steps 1-4 for one server: crawl, negotiate, probe, pre-categorise.

    Returns the partially filled outcome plus the probe when the outcome still
    needs the classification phase (``None`` otherwise). Module-level so
    worker processes can run it without shipping the trained forest.
    """
    outcome, mss = _prepare_probe(record, crawler, config)
    if mss is None:
        return outcome, None

    # Step 3: probe with the w_timeout ladder.
    probe = probe_with_w_timeout_ladder(
        record.server, record.condition, rng, mss,
        server_id=record.profile.server_id,
        wait_between_environments=config.wait_between_environments,
        deadline=config.probe_deadline)
    return _finish_probe(outcome, probe, record.profile)


def _validate_stop_after(stop_after_shards: int | None) -> None:
    """Reject stop-after budgets that would silently still run a shard."""
    if stop_after_shards is not None and stop_after_shards < 1:
        raise ValueError("stop_after_shards must be at least 1 (omit it to "
                         "run every pending shard)")


def _invalid_reason(probe: ProbeTrace, profile) -> InvalidReason:
    reason = probe.invalid_reason or InvalidReason.INSUFFICIENT_DATA
    if reason is InvalidReason.INSUFFICIENT_DATA and profile.max_pipelined_requests <= 3:
        # The paper distinguishes "page too short" from "server accepts
        # only one or a few pipelined requests"; the observable symptom is
        # the same (the transfer stops early), so use the server property.
        return InvalidReason.TOO_FEW_REQUESTS
    return reason


# Per-worker state for the probe phase; set once per process by the executor's
# initializer so tasks only carry (record, seed).
_PROBE_WORKER: dict = {}


def _init_probe_worker(config: CensusConfig) -> None:
    _PROBE_WORKER["config"] = config
    _PROBE_WORKER["crawler"] = PageSearchTool(page_budget=config.crawler_page_budget)
    pack = None
    if config.scenario_pack is not None:
        from repro.scenarios import scenario_pack_by_name

        pack = scenario_pack_by_name(config.scenario_pack)
        if not pack.wraps_servers():
            pack = None  # baseline packs leave the probe path untouched
    _PROBE_WORKER["pack"] = pack


def _scenario_record(record: ServerRecord) -> ServerRecord:
    """Wrap one record's server with the active scenario pack, if any.

    Baseline packs (and no pack at all) return the record unchanged, so the
    columnar fast path and the historic byte-for-byte behaviour survive.
    Wrapped servers are rejected by the columnar admissibility check and run
    the exact scalar probe path instead.
    """
    pack = _PROBE_WORKER.get("pack")
    if pack is None:
        return record
    wrapped = pack.wrap_server(record.server, record.profile.server_id)
    if wrapped is record.server:
        return record
    return dataclasses.replace(record, server=wrapped)


def _attempt_seed(seed_sequence: np.random.SeedSequence,
                  attempt: int) -> np.random.SeedSequence:
    """The deterministic rng seed of one probe attempt.

    Attempt 0 is the task's own seed sequence — bit-identical to the
    pre-resilience code path. Retries use the children ``spawn`` would
    produce, derived *purely* (no mutation of the parent's spawn counter),
    so the stream of attempt ``k`` depends only on (census seed, population
    index, ``k``) — never on scheduling or on how other servers fared.

    Args:
        seed_sequence: The task's per-server seed sequence.
        attempt: Zero-based probe attempt.

    Returns:
        The seed sequence to build the attempt's rng from.
    """
    if attempt == 0:
        return seed_sequence
    return np.random.SeedSequence(
        entropy=seed_sequence.entropy,
        spawn_key=tuple(seed_sequence.spawn_key) + (attempt - 1,))


def _fault_failure_outcome(record: ServerRecord,
                           fault: FaultInjected) -> ServerOutcome:
    """Terminal outcome for a server whose fault never cleared."""
    profile = record.profile
    return ServerOutcome(
        server_id=profile.server_id,
        valid=False,
        invalid_reason=fault.invalid_reason,
        true_algorithm=profile.effective_algorithm(),
        software=profile.software,
        region=profile.region,
    )


def _resilient_probe(record: ServerRecord, crawler: PageSearchTool,
                     config: CensusConfig,
                     seed_sequence: np.random.SeedSequence
                     ) -> tuple[ServerOutcome, ProbeTrace | None]:
    """Probe one server with retries, backoff, and fault classification.

    Each attempt gets its own deterministic rng stream
    (:func:`_attempt_seed`); a retry first draws its full-jitter backoff
    (``uniform(0, min(backoff_max, backoff_base * 2**(k-1)))``) from that
    stream, accumulating into the outcome's ``backoff_total``. A
    :class:`~repro.faults.plan.FaultInjected` marked transient is retried up
    to ``max_probe_attempts``; a permanent one fails fast. The returned
    outcome carries the full accounting (attempts, backoff, fault events).
    """
    plan = config.fault_plan if config.fault_plan is not None else FaultPlan()
    server_id = record.profile.server_id
    fault_events: list[tuple[str, int]] = []
    backoff_total = 0.0
    last_fault: FaultInjected | None = None
    outcome: ServerOutcome | None = None
    probe: ProbeTrace | None = None
    attempts_used = 0
    for attempt in range(config.max_probe_attempts):
        attempts_used = attempt + 1
        rng = np.random.default_rng(_attempt_seed(seed_sequence, attempt))
        if attempt > 0:
            cap = min(config.backoff_max,
                      config.backoff_base * 2.0 ** (attempt - 1))
            backoff_total += float(rng.uniform(0.0, cap))
        specs = plan.probe_faults(server_id, attempt)
        wrapper: FaultyServer | None = None
        probe_record = record
        if specs:
            wrapper = FaultyServer(record.server, specs)
            probe_record = dataclasses.replace(record, server=wrapper)
        try:
            outcome, probe = probe_server(probe_record, crawler, config, rng)
        except FaultInjected as fault:
            last_fault = fault
            if wrapper is not None:
                fault_events.extend((event["kind"], attempt)
                                    for event in wrapper.events)
            if not fault.transient:
                break
            continue
        if wrapper is not None:
            fault_events.extend((event["kind"], attempt)
                                for event in wrapper.events)
        break
    if outcome is None:
        assert last_fault is not None
        outcome = _fault_failure_outcome(record, last_fault)
        probe = None
    outcome.attempts = attempts_used
    outcome.backoff_total = backoff_total
    outcome.fault_events = tuple(fault_events)
    return outcome, probe


def _check_worker_death(tasks: list[tuple[ServerRecord, np.random.SeedSequence]],
                        config: CensusConfig) -> None:
    """Raise the injected worker death for this task, if the plan says so.

    A task dies when the plan's ``worker_death`` fires for *any* server in
    it (a dying worker takes its whole cohort down), with the scope key
    being each server's id and the execution attempt the per-process
    ``_PROBE_WORKER["exec_attempt"]`` counter (0 in the pool; incremented
    by the in-process recovery re-runs). Keying on server ids — not on the
    cohort — makes the set of victims identical whatever the backend,
    columnar cohort size, or engine tier.
    """
    plan = config.fault_plan
    if plan is None or plan.empty:
        return
    attempt = _PROBE_WORKER.get("exec_attempt", 0)
    for record, _ in tasks:
        scope = record.profile.server_id
        if plan.worker_death_fires(scope, attempt):
            raise WorkerDeathFault(
                f"injected worker death (task scope {scope}, "
                f"attempt {attempt})")


def _execution_event_kind(failure: TaskFailure) -> str:
    """Fault-event kind recorded for one captured execution failure."""
    if failure.error_type == "WorkerDeathFault":
        return "worker_death"
    if failure.error_type == "TimeoutError":
        return "task_timeout"
    return "task_error"


def _describe_probe_task(index: int, task) -> str:
    """Human-readable context stored on a :class:`TaskFailure` slot."""
    if isinstance(task, list):
        first = task[0][0].profile.server_id
        return f"cohort[{len(task)}] starting at server {first}"
    return f"server {task[0].profile.server_id}"


def _probe_task(task: tuple[ServerRecord, np.random.SeedSequence]
                ) -> tuple[ServerOutcome, ProbeTrace | None]:
    record, seed = task
    config = _PROBE_WORKER["config"]
    _check_worker_death([task], config)
    record = _scenario_record(record)
    if config.resilience_active():
        return _resilient_probe(record, _PROBE_WORKER["crawler"], config, seed)
    return probe_server(record, _PROBE_WORKER["crawler"], config,
                        np.random.default_rng(seed))


def _probe_chunk_task(tasks: list[tuple[ServerRecord, np.random.SeedSequence]]
                      ) -> list[tuple[ServerOutcome, ProbeTrace | None]]:
    """Steps 1-4 for one cohort of servers via the columnar engine.

    Each server still draws from its own seed-derived stream, fed strictly
    sequentially through its ladder lane, so the outcomes are bit-identical
    to running :func:`probe_server` per record -- the cohort only changes
    *where* the clean-round arithmetic executes.

    When resilience is active, servers a fault plan could touch (and every
    server once a probe deadline is set) run the resilient scalar path in
    their cohort slot instead of a lane: fault wrappers and retry loops are
    exact there, while untouched servers keep the columnar fast path.
    """
    config = _PROBE_WORKER["config"]
    crawler = _PROBE_WORKER["crawler"]
    _check_worker_death(tasks, config)
    if _PROBE_WORKER.get("pack") is not None:
        tasks = [(_scenario_record(record), seed) for record, seed in tasks]
    plan = config.fault_plan
    resilient_slots: set[int] = set()
    if config.resilience_active():
        for index, (record, _) in enumerate(tasks):
            if (config.probe_deadline is not None
                    or (plan is not None
                        and plan.targets_server(record.profile.server_id))):
                resilient_slots.add(index)
    results: list = [None] * len(tasks)
    prepared: list[tuple[int, ServerOutcome, LadderLane | None, ServerRecord]] = []
    lanes: list[LadderLane] = []
    for index, (record, seed) in enumerate(tasks):
        if index in resilient_slots:
            results[index] = _resilient_probe(record, crawler, config, seed)
            continue
        outcome, mss = _prepare_probe(record, crawler, config)
        if mss is None:
            prepared.append((index, outcome, None, record))
            continue
        lane = LadderLane(record.server, record.condition,
                          np.random.default_rng(seed), mss,
                          server_id=record.profile.server_id,
                          wait_between_environments=config.wait_between_environments)
        prepared.append((index, outcome, lane, record))
        lanes.append(lane)
    ColumnarProbeEngine().run(lanes)
    for index, outcome, lane, record in prepared:
        results[index] = ((outcome, None) if lane is None
                          else _finish_probe(outcome, lane.result, record.profile))
    return results


@dataclass
class CensusRunner:
    """Runs the census against a server population."""

    classifier: CaaiClassifier
    config: CensusConfig = field(default_factory=CensusConfig)
    #: Overrides the backend/worker knobs of :attr:`config` when provided.
    executor: ParallelExecutor | None = None

    def __post_init__(self) -> None:
        if not self.classifier.is_trained:
            raise ValueError("the census needs a trained classifier")

    # ------------------------------------------------------------------ API
    def run(self, population: ServerPopulation) -> CensusReport:
        """Probe every server in the population and aggregate the outcomes.

        Every server draws from its own seed-derived random stream, so the
        report is identical for the serial and multiprocessing backends.

        Args:
            population: The server population (generated on demand).

        Returns:
            The aggregated :class:`CensusReport`, in population order.
        """
        records = self._records(population)
        outcomes = self._measure_indices(records, list(range(len(records))))
        report = CensusReport()
        for outcome in outcomes:
            report.add(outcome)
        return report

    def run_sharded(self, population: ServerPopulation,
                    checkpoint_dir, *, num_shards: int = 8,
                    stop_after_shards: int | None = None,
                    settings: dict | None = None) -> CensusReport | None:
        """Start a checkpointed census split over ``num_shards`` shards.

        Every server is assigned to a shard by a stable hash of its id and
        the census seed (:func:`repro.core.checkpoint.shard_of`); each shard
        is probed and classified like a miniature census and persisted as an
        append-only JSONL file before the manifest marks it complete. The
        run can be interrupted at any point (between or inside shards) and
        picked up with :meth:`resume`.

        Args:
            population: The server population (generated on demand).
            checkpoint_dir: Directory for the manifest and shard files; must
                not already contain a checkpoint.
            num_shards: How many shards to split the census into.
            stop_after_shards: Stop (returning ``None``) after completing
                this many shards in this invocation — lets callers spread
                one census over several invocations or simulate a kill.
            settings: Free-form dict stored in the manifest (the CLI keeps
                everything needed to rebuild population + classifier here).

        Returns:
            The merged :class:`CensusReport` if every shard completed in
            this invocation, else ``None`` (resume later).
        """
        _validate_stop_after(stop_after_shards)
        records = self._records(population)
        checkpoint = CensusCheckpoint.create(
            checkpoint_dir, seed=self.config.seed, num_shards=num_shards,
            fingerprint=self._fingerprint(population),
            population_size=len(records), settings=settings)
        return self._run_pending_shards(checkpoint, population,
                                        stop_after_shards)

    def resume(self, population: ServerPopulation,
               checkpoint_dir, *,
               stop_after_shards: int | None = None) -> CensusReport | None:
        """Continue an interrupted sharded census from its checkpoint.

        Completed shards are skipped (their outcomes are reloaded from disk
        at merge time); pending shards are re-run from scratch. Because each
        server's random stream is derived only from the census seed and the
        server's population position, the merged report is bit-identical to
        an uninterrupted monolithic :meth:`run` — regardless of shard count,
        interruption point, or backend.

        Args:
            population: The same population the checkpoint was created with.
            checkpoint_dir: Directory of the existing checkpoint.
            stop_after_shards: As for :meth:`run_sharded`.

        Returns:
            The merged :class:`CensusReport` once every shard is complete,
            else ``None``.

        Raises:
            repro.core.checkpoint.CheckpointError: If the checkpoint is
                missing, corrupt, or was created with a different
                census/population/classifier configuration.
        """
        _validate_stop_after(stop_after_shards)
        checkpoint = CensusCheckpoint.open(checkpoint_dir)
        checkpoint.verify_fingerprint(self._fingerprint(population))
        return self._run_pending_shards(checkpoint, population,
                                        stop_after_shards)

    @staticmethod
    def checkpoint_status(checkpoint_dir) -> dict:
        """Progress summary of a checkpoint directory (see CLI ``status``).

        Args:
            checkpoint_dir: Directory of an existing checkpoint.

        Returns:
            The checkpoint's :meth:`~repro.core.checkpoint.CensusCheckpoint.status`
            dict (seed, completed/pending shards, settings).
        """
        return CensusCheckpoint.open(checkpoint_dir).status()

    @staticmethod
    def merge_checkpoint(checkpoint_dir) -> CensusReport:
        """Merge a fully completed checkpoint into a :class:`CensusReport`.

        Needs no classifier or population: the shard files already carry the
        classified outcomes. Outcomes are ordered by population index, so
        the merged report is bit-identical to the monolithic run.

        Args:
            checkpoint_dir: Directory of a checkpoint with no pending shards.

        Returns:
            The merged report.

        Raises:
            repro.core.checkpoint.CheckpointError: If shards are pending or
                any shard file fails validation.
        """
        return CensusCheckpoint.open(checkpoint_dir).merge_report()

    def measure_server(self, record: ServerRecord, crawler: PageSearchTool,
                       rng: np.random.Generator) -> ServerOutcome:
        """Measure a single server: crawl, probe, categorise.

        Args:
            record: The server and its emulated network condition.
            crawler: The page-searching tool to find a long page with.
            rng: The server's dedicated random stream.

        Returns:
            The fully categorised :class:`ServerOutcome`.
        """
        outcome, probe = probe_server(record, crawler, self.config, rng)
        if probe is not None:
            self._classify_pending([(outcome, probe)])
        return outcome

    def measure_indices(self, records: list[ServerRecord],
                        indices: list[int],
                        seeds: list | None = None) -> list[ServerOutcome]:
        """Probe and classify the records at ``indices``, in that order.

        Seeds are derived from the census seed and each record's position in
        the **full** population, so measuring any subset yields outcomes
        bit-identical to the same servers inside a monolithic :meth:`run` —
        this is what lets the work-stealing orchestrator
        (:class:`repro.serving.orchestrator.CensusOrchestrator`) replay a
        stolen shard and commit results indistinguishable from the first
        attempt's.

        Args:
            records: The **full** population's records (positions key the
                per-server random streams).
            indices: Population indices to measure, in output order.
            seeds: Optional precomputed :func:`repro.parallel.task_seeds`
                list for the full population; callers measuring several
                subsets pass it to avoid re-deriving it per subset.

        Returns:
            One classified :class:`ServerOutcome` per index, in order.
        """
        return self._measure_indices(records, indices, seeds=seeds)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _records(population: ServerPopulation) -> list[ServerRecord]:
        """The population's records, generating them on first use."""
        if not population.records:
            population.generate()
        return population.records

    def _fingerprint(self, population: ServerPopulation) -> str:
        """Config fingerprint binding checkpoints to this exact run."""
        return census_fingerprint(
            self.config, population,
            classifier_fingerprint=classifier_fingerprint(self.classifier))

    def _measure_indices(self, records: list[ServerRecord],
                         indices: list[int],
                         seeds: list | None = None) -> list[ServerOutcome]:
        """Probe and classify the records at ``indices``, in that order.

        Seeds are derived from the census seed and each record's position in
        the **full** population, so measuring any subset yields outcomes
        bit-identical to the same servers inside a monolithic run. Callers
        measuring several subsets pass the precomputed full-population
        ``seeds`` list to avoid re-deriving it per subset.

        When execution faults are possible (a fault plan with
        ``worker_death`` specs, or a ``task_timeout``), task failures are
        captured as :class:`~repro.parallel.TaskFailure` slots and recovered
        deterministically by :meth:`_recover_task_failures` instead of
        aborting the census.
        """
        capture = self._capture_failures()
        executor = self.executor or ParallelExecutor(
            backend=self.config.backend, max_workers=self.config.max_workers,
            capture_failures=capture, task_timeout=self.config.task_timeout)
        if seeds is None:
            seeds = task_seeds(self.config.seed, len(records))
        tasks = [(records[i], seeds[i]) for i in indices]
        if columnar_enabled():
            # Chunk the probe phase into cohorts for the columnar engine;
            # per-record seeding keeps the outcomes bit-identical to the
            # per-server path whatever the cohort size or backend.
            size = columnar_cohort_size()
            chunks = [tasks[lo:lo + size] for lo in range(0, len(tasks), size)]
            per_chunk = executor.map(_probe_chunk_task, chunks,
                                     initializer=_init_probe_worker,
                                     initargs=(self.config,),
                                     describe=_describe_probe_task)
            if capture:
                per_chunk = self._recover_task_failures(
                    chunks, per_chunk, chunked=True)
            partials = [pair for chunk in per_chunk for pair in chunk]
        else:
            partials = executor.map(_probe_task, tasks,
                                    initializer=_init_probe_worker,
                                    initargs=(self.config,),
                                    describe=_describe_probe_task)
            if capture:
                partials = self._recover_task_failures(
                    tasks, partials, chunked=False)
        pending = [(outcome, probe) for outcome, probe in partials if probe is not None]
        self._classify_pending(pending)
        return [outcome for outcome, _ in partials]

    def _capture_failures(self) -> bool:
        """Whether the probe phase should capture per-task failures.

        Returns:
            ``True`` only when an execution fault is actually possible (a
            plan with execution-layer specs, or a task timeout); otherwise
            exceptions propagate exactly as they always have, so real bugs
            are never silently converted into outcomes.
        """
        if self.config.task_timeout is not None:
            return True
        plan = self.config.fault_plan
        return plan is not None and any(spec.kind == "worker_death"
                                        for spec in plan.specs)

    def _recover_task_failures(self, tasks: list, results: list,
                               *, chunked: bool) -> list:
        """Re-run failed task slots in-process, deterministically.

        A dead worker (injected or real) leaves a
        :class:`~repro.parallel.TaskFailure` in its slot. Every record of
        the failed task is then re-run *individually* through the scalar
        probe path with ``_PROBE_WORKER["exec_attempt"]`` incremented — the
        injected ``worker_death`` decision is a pure function of (plan
        seed, server id, attempt), so the recovered outcomes (and their
        ``worker_death`` fault events, attached only to the servers the
        plan actually targets) are bit-identical whatever the backend,
        cohort size, or engine tier. Records whose every attempt died
        yield synthesised ``worker_failed`` outcomes, so the census always
        returns one outcome per server.
        """
        if not any(isinstance(result, TaskFailure) for result in results):
            return results
        _init_probe_worker(self.config)
        recovered = list(results)
        for slot, result in enumerate(results):
            if not isinstance(result, TaskFailure):
                continue
            kind = _execution_event_kind(result)
            task_items = tasks[slot] if chunked else [tasks[slot]]
            pairs = [self._recover_record(item, kind) for item in task_items]
            recovered[slot] = pairs if chunked else pairs[0]
        return recovered

    def _recover_record(self, task: tuple[ServerRecord, np.random.SeedSequence],
                        kind: str) -> tuple[ServerOutcome, ProbeTrace | None]:
        """Recover one record of a failed task by scalar re-runs.

        For an injected ``worker_death`` the record's own failed attempts
        are reconstructed from the plan (pure function of server id and
        attempt); cohort-mates the plan never targeted recover with no
        fault events, exactly as if their task had not shared a worker with
        the victim. Real failures (``task_timeout`` / ``task_error``)
        attach their event to every record of the dead task, and a real
        exception that recurs on the in-process re-run still propagates
        loudly.
        """
        record, _ = task
        server_id = record.profile.server_id
        plan = self.config.fault_plan
        injected = kind == "worker_death" and plan is not None
        if injected:
            failed = [(kind, attempt)
                      for attempt in range(self.config.max_probe_attempts)
                      if plan.worker_death_fires(server_id, attempt)]
        else:
            failed = [(kind, 0)]
        for attempt in range(1, self.config.max_probe_attempts):
            if injected and plan.worker_death_fires(server_id, attempt):
                continue
            _PROBE_WORKER["exec_attempt"] = attempt
            try:
                pair = _probe_task(task)
            finally:
                _PROBE_WORKER.pop("exec_attempt", None)
            outcome = pair[0]
            if failed:
                outcome.fault_events = outcome.fault_events + tuple(failed)
            return pair
        return self._worker_failed_outcome(record, failed)

    @staticmethod
    def _worker_failed_outcome(record: ServerRecord,
                               failed_attempts: list[tuple[str, int]]
                               ) -> tuple[ServerOutcome, None]:
        """Synthesise a ``worker_failed`` outcome for an unrecoverable record."""
        profile = record.profile
        return (ServerOutcome(
            server_id=profile.server_id,
            valid=False,
            invalid_reason=InvalidReason.WORKER_FAILED,
            true_algorithm=profile.effective_algorithm(),
            software=profile.software,
            region=profile.region,
            attempts=len(failed_attempts),
            fault_events=tuple(failed_attempts),
        ), None)

    def _run_pending_shards(self, checkpoint: CensusCheckpoint,
                            population: ServerPopulation,
                            stop_after_shards: int | None) -> CensusReport | None:
        """Run every pending shard (up to ``stop_after_shards``), then merge.

        A ``torn_checkpoint`` fault in the plan cuts the shard write short
        and raises :class:`~repro.core.checkpoint.TornWriteError`, exactly
        like a crash mid-write would; the shard stays pending and a resume
        re-runs it (the rewrite is self-healing — ``write_shard`` truncates).
        The write attempt is 1 when a partial shard file from an earlier
        tear already exists, so ``persist_attempts=1`` tears exactly once.
        """
        records = self._records(population)
        assignments = shard_assignments(
            [record.profile.server_id for record in records],
            checkpoint.seed, checkpoint.num_shards)
        seeds = task_seeds(self.config.seed, len(records))
        plan = self.config.fault_plan
        completed_now = 0
        for shard_index in checkpoint.pending_shards():
            indices = assignments[shard_index]
            outcomes = self._measure_indices(records, indices, seeds=seeds)
            torn_after = None
            if plan is not None and not plan.empty:
                write_attempt = 1 if checkpoint.shard_path(shard_index).exists() else 0
                torn_after = plan.torn_write_after(shard_index, write_attempt)
            checkpoint.write_shard(shard_index, list(zip(indices, outcomes)),
                                   torn_after=torn_after)
            completed_now += 1
            if stop_after_shards is not None and completed_now >= stop_after_shards:
                break
        if checkpoint.all_complete():
            return checkpoint.merge_report(expected_size=len(records))
        return None

    def _classify_pending(self, pending: list[tuple[ServerOutcome, ProbeTrace]]) -> None:
        """Steps 5-6 for every outcome that survived the probe phase."""
        if not pending:
            return
        extractor = self.classifier.extractor
        vectors = [extractor.extract(probe) for _, probe in pending]
        w_timeouts = [probe.w_timeout for _, probe in pending]
        identifications = self.classifier.classify_vectors(vectors, w_timeouts)
        for (outcome, probe), identification in zip(pending, identifications):
            # Step 5: random forest classification with the confidence threshold.
            outcome.confidence = identification.confidence
            if not identification.unsure:
                outcome.category = identification.label
                continue
            # Step 6: an unconfident classification may still match one of the
            # shape-based special cases (Approaching w_t, Bounded Window); if
            # not, it is reported as "Unsure TCP" exactly like the paper.
            shape = detect_shape_case(probe)
            if shape is not None:
                outcome.special_case = shape
                outcome.category = shape.value
            else:
                outcome.category = UNSURE
