"""The Internet measurement campaign (Section VII-B of the paper).

For every server in the (synthetic) population the census:

1. runs the Web-page searching tool to find a long page on the server;
2. negotiates the smallest MSS the server accepts from CAAI's ladder;
3. probes the server, walking the ``w_timeout`` ladder 512 / 256 / 128 / 64
   until a usable pair of traces is gathered;
4. if no usable trace exists, records the reason (Section VII-B2);
5. otherwise checks for the special trace cases of Section VII-B3 and, when
   none applies, classifies the feature vector with the trained random
   forest, reporting "unsure" when fewer than 40 % of the trees agree.

The aggregated :class:`~repro.core.results.CensusReport` is the reproduction
of Table IV plus the server-information summaries of Section VII-B1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classifier import CaaiClassifier
from repro.core.gather import negotiate_probe_mss, probe_with_w_timeout_ladder
from repro.core.labels import UNSURE
from repro.core.results import CensusReport, ServerOutcome
from repro.core.special_cases import detect_shape_case, detect_stalled_case
from repro.core.trace import InvalidReason, ProbeTrace
from repro.web.crawler import PageSearchTool
from repro.web.population import ServerPopulation, ServerRecord


@dataclass
class CensusConfig:
    """Parameters of a census run."""

    seed: int = 42
    #: Seconds CAAI waits between environments (slow start threshold caches).
    wait_between_environments: float = 600.0
    #: Crawl budget of the page searching tool.
    crawler_page_budget: int = 120
    #: Skip the crawler and request the default page directly (ablation).
    use_page_search: bool = True


@dataclass
class CensusRunner:
    """Runs the census against a server population."""

    classifier: CaaiClassifier
    config: CensusConfig = field(default_factory=CensusConfig)

    def __post_init__(self) -> None:
        if not self.classifier.is_trained:
            raise ValueError("the census needs a trained classifier")

    # ------------------------------------------------------------------ API
    def run(self, population: ServerPopulation) -> CensusReport:
        """Probe every server in the population and aggregate the outcomes."""
        if not population.records:
            population.generate()
        rng = np.random.default_rng(self.config.seed)
        report = CensusReport()
        crawler = PageSearchTool(page_budget=self.config.crawler_page_budget)
        for record in population.records:
            report.add(self.measure_server(record, crawler, rng))
        return report

    def measure_server(self, record: ServerRecord, crawler: PageSearchTool,
                       rng: np.random.Generator) -> ServerOutcome:
        """Measure a single server: crawl, probe, categorise."""
        server = record.server
        profile = record.profile
        outcome = ServerOutcome(
            server_id=profile.server_id,
            valid=False,
            true_algorithm=profile.effective_algorithm(),
            software=profile.software,
            region=profile.region,
        )

        # Step 1: find a long page (Section IV-E).
        if self.config.use_page_search:
            crawl = crawler.search(server.site)
            server.probe_path = crawl.best_path
        else:
            server.probe_path = server.site.default_path

        # Step 2: MSS negotiation (Table II).
        mss = negotiate_probe_mss(server)
        if mss is None:
            outcome.invalid_reason = InvalidReason.MSS_REJECTED
            return outcome
        outcome.mss = mss

        # Step 3: probe with the w_timeout ladder.
        probe = probe_with_w_timeout_ladder(
            server, record.condition, rng, mss,
            server_id=profile.server_id,
            wait_between_environments=self.config.wait_between_environments)
        if not probe.usable_for_features:
            outcome.invalid_reason = self._invalid_reason(probe, profile)
            return outcome

        outcome.valid = True
        outcome.w_timeout = probe.w_timeout

        # Step 4: traces with no congestion-avoidance growth at all never
        # occur on the testbed and are filtered out before classification.
        special = detect_stalled_case(probe)
        if special is not None:
            outcome.special_case = special
            outcome.category = special.value
            return outcome

        # Step 5: random forest classification with the confidence threshold.
        identification = self.classifier.classify_probe(probe)
        outcome.confidence = identification.confidence
        if not identification.unsure:
            outcome.category = identification.label
            return outcome

        # Step 6: an unconfident classification may still match one of the
        # shape-based special cases (Approaching w_t, Bounded Window); if not,
        # it is reported as "Unsure TCP" exactly like the paper.
        shape = detect_shape_case(probe)
        if shape is not None:
            outcome.special_case = shape
            outcome.category = shape.value
        else:
            outcome.category = UNSURE
        return outcome

    # ------------------------------------------------------------- internals
    def _invalid_reason(self, probe: ProbeTrace, profile) -> InvalidReason:
        reason = probe.invalid_reason or InvalidReason.INSUFFICIENT_DATA
        if reason is InvalidReason.INSUFFICIENT_DATA and profile.max_pipelined_requests <= 3:
            # The paper distinguishes "page too short" from "server accepts
            # only one or a few pipelined requests"; the observable symptom is
            # the same (the transfer stops early), so use the server property.
            return InvalidReason.TOO_FEW_REQUESTS
        return reason
