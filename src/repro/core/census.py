"""The Internet measurement campaign (Section VII-B of the paper).

For every server in the (synthetic) population the census:

1. runs the Web-page searching tool to find a long page on the server;
2. negotiates the smallest MSS the server accepts from CAAI's ladder;
3. probes the server, walking the ``w_timeout`` ladder 512 / 256 / 128 / 64
   until a usable pair of traces is gathered;
4. if no usable trace exists, records the reason (Section VII-B2);
5. otherwise checks for the special trace cases of Section VII-B3 and, when
   none applies, classifies the feature vector with the trained random
   forest, reporting "unsure" when fewer than 40 % of the trees agree.

The aggregated :class:`~repro.core.results.CensusReport` is the reproduction
of Table IV plus the server-information summaries of Section VII-B1.

Execution is organised in two phases so both hot paths scale:

* the **probe phase** (steps 1-4) is embarrassingly parallel; every server
  gets its own deterministic random stream (:func:`repro.parallel.task_seeds`)
  and the work fans out over a :class:`~repro.parallel.ParallelExecutor`
  (serial or multiprocessing -- bit-identical reports either way);
* the **classification phase** (steps 5-6) routes every pending feature
  vector through the forest in one vectorised batch
  (:meth:`~repro.core.classifier.CaaiClassifier.classify_vectors`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.checkpoint import (
    CensusCheckpoint,
    census_fingerprint,
    classifier_fingerprint,
    shard_assignments,
)
from repro.core.classifier import CaaiClassifier
from repro.core.columnar import (
    ColumnarProbeEngine,
    LadderLane,
    columnar_cohort_size,
    columnar_enabled,
)
from repro.core.gather import negotiate_probe_mss, probe_with_w_timeout_ladder
from repro.core.labels import UNSURE
from repro.core.results import CensusReport, ServerOutcome
from repro.core.special_cases import detect_shape_case, detect_stalled_case
from repro.core.trace import InvalidReason, ProbeTrace
from repro.parallel import ParallelExecutor, task_seeds
from repro.web.crawler import PageSearchTool
from repro.web.population import ServerPopulation, ServerRecord


@dataclass
class CensusConfig:
    """Parameters of a census run."""

    seed: int = 42
    #: Seconds CAAI waits between environments (slow start threshold caches).
    wait_between_environments: float = 600.0
    #: Crawl budget of the page searching tool.
    crawler_page_budget: int = 120
    #: Skip the crawler and request the default page directly (ablation).
    use_page_search: bool = True
    #: Execution backend for the probe phase (``serial`` / ``process``).
    backend: str = "serial"
    #: Worker processes for the ``process`` backend (``None`` = one per CPU).
    max_workers: int | None = None


def _prepare_probe(record: ServerRecord, crawler: PageSearchTool,
                   config: CensusConfig) -> tuple[ServerOutcome, int | None]:
    """Steps 1-2 for one server: crawl and MSS negotiation.

    Returns the partially filled outcome plus the negotiated MSS (``None``
    when the server rejects CAAI's whole MSS ladder, in which case the
    outcome is already final).
    """
    server = record.server
    profile = record.profile
    outcome = ServerOutcome(
        server_id=profile.server_id,
        valid=False,
        true_algorithm=profile.effective_algorithm(),
        software=profile.software,
        region=profile.region,
    )

    # Step 1: find a long page (Section IV-E).
    if config.use_page_search:
        crawl = crawler.search(server.site)
        server.probe_path = crawl.best_path
    else:
        server.probe_path = server.site.default_path

    # Step 2: MSS negotiation (Table II).
    mss = negotiate_probe_mss(server)
    if mss is None:
        outcome.invalid_reason = InvalidReason.MSS_REJECTED
        return outcome, None
    outcome.mss = mss
    return outcome, mss


def _finish_probe(outcome: ServerOutcome, probe: ProbeTrace,
                  profile) -> tuple[ServerOutcome, ProbeTrace | None]:
    """Step 4 for one finished probe: validity check and pre-categorisation."""
    if not probe.usable_for_features:
        outcome.invalid_reason = _invalid_reason(probe, profile)
        return outcome, None

    outcome.valid = True
    outcome.w_timeout = probe.w_timeout

    # Traces with no congestion-avoidance growth at all never occur on the
    # testbed and are filtered out before classification.
    special = detect_stalled_case(probe)
    if special is not None:
        outcome.special_case = special
        outcome.category = special.value
        return outcome, None

    return outcome, probe


def probe_server(record: ServerRecord, crawler: PageSearchTool,
                 config: CensusConfig,
                 rng: np.random.Generator) -> tuple[ServerOutcome, ProbeTrace | None]:
    """Steps 1-4 for one server: crawl, negotiate, probe, pre-categorise.

    Returns the partially filled outcome plus the probe when the outcome still
    needs the classification phase (``None`` otherwise). Module-level so
    worker processes can run it without shipping the trained forest.
    """
    outcome, mss = _prepare_probe(record, crawler, config)
    if mss is None:
        return outcome, None

    # Step 3: probe with the w_timeout ladder.
    probe = probe_with_w_timeout_ladder(
        record.server, record.condition, rng, mss,
        server_id=record.profile.server_id,
        wait_between_environments=config.wait_between_environments)
    return _finish_probe(outcome, probe, record.profile)


def _validate_stop_after(stop_after_shards: int | None) -> None:
    """Reject stop-after budgets that would silently still run a shard."""
    if stop_after_shards is not None and stop_after_shards < 1:
        raise ValueError("stop_after_shards must be at least 1 (omit it to "
                         "run every pending shard)")


def _invalid_reason(probe: ProbeTrace, profile) -> InvalidReason:
    reason = probe.invalid_reason or InvalidReason.INSUFFICIENT_DATA
    if reason is InvalidReason.INSUFFICIENT_DATA and profile.max_pipelined_requests <= 3:
        # The paper distinguishes "page too short" from "server accepts
        # only one or a few pipelined requests"; the observable symptom is
        # the same (the transfer stops early), so use the server property.
        return InvalidReason.TOO_FEW_REQUESTS
    return reason


# Per-worker state for the probe phase; set once per process by the executor's
# initializer so tasks only carry (record, seed).
_PROBE_WORKER: dict = {}


def _init_probe_worker(config: CensusConfig) -> None:
    _PROBE_WORKER["config"] = config
    _PROBE_WORKER["crawler"] = PageSearchTool(page_budget=config.crawler_page_budget)


def _probe_task(task: tuple[ServerRecord, np.random.SeedSequence]
                ) -> tuple[ServerOutcome, ProbeTrace | None]:
    record, seed = task
    return probe_server(record, _PROBE_WORKER["crawler"], _PROBE_WORKER["config"],
                        np.random.default_rng(seed))


def _probe_chunk_task(tasks: list[tuple[ServerRecord, np.random.SeedSequence]]
                      ) -> list[tuple[ServerOutcome, ProbeTrace | None]]:
    """Steps 1-4 for one cohort of servers via the columnar engine.

    Each server still draws from its own seed-derived stream, fed strictly
    sequentially through its ladder lane, so the outcomes are bit-identical
    to running :func:`probe_server` per record -- the cohort only changes
    *where* the clean-round arithmetic executes.
    """
    config = _PROBE_WORKER["config"]
    crawler = _PROBE_WORKER["crawler"]
    prepared: list[tuple[ServerOutcome, LadderLane | None, ServerRecord]] = []
    lanes: list[LadderLane] = []
    for record, seed in tasks:
        outcome, mss = _prepare_probe(record, crawler, config)
        if mss is None:
            prepared.append((outcome, None, record))
            continue
        lane = LadderLane(record.server, record.condition,
                          np.random.default_rng(seed), mss,
                          server_id=record.profile.server_id,
                          wait_between_environments=config.wait_between_environments)
        prepared.append((outcome, lane, record))
        lanes.append(lane)
    ColumnarProbeEngine().run(lanes)
    return [
        (outcome, None) if lane is None
        else _finish_probe(outcome, lane.result, record.profile)
        for outcome, lane, record in prepared
    ]


@dataclass
class CensusRunner:
    """Runs the census against a server population."""

    classifier: CaaiClassifier
    config: CensusConfig = field(default_factory=CensusConfig)
    #: Overrides the backend/worker knobs of :attr:`config` when provided.
    executor: ParallelExecutor | None = None

    def __post_init__(self) -> None:
        if not self.classifier.is_trained:
            raise ValueError("the census needs a trained classifier")

    # ------------------------------------------------------------------ API
    def run(self, population: ServerPopulation) -> CensusReport:
        """Probe every server in the population and aggregate the outcomes.

        Every server draws from its own seed-derived random stream, so the
        report is identical for the serial and multiprocessing backends.

        Args:
            population: The server population (generated on demand).

        Returns:
            The aggregated :class:`CensusReport`, in population order.
        """
        records = self._records(population)
        outcomes = self._measure_indices(records, list(range(len(records))))
        report = CensusReport()
        for outcome in outcomes:
            report.add(outcome)
        return report

    def run_sharded(self, population: ServerPopulation,
                    checkpoint_dir, *, num_shards: int = 8,
                    stop_after_shards: int | None = None,
                    settings: dict | None = None) -> CensusReport | None:
        """Start a checkpointed census split over ``num_shards`` shards.

        Every server is assigned to a shard by a stable hash of its id and
        the census seed (:func:`repro.core.checkpoint.shard_of`); each shard
        is probed and classified like a miniature census and persisted as an
        append-only JSONL file before the manifest marks it complete. The
        run can be interrupted at any point (between or inside shards) and
        picked up with :meth:`resume`.

        Args:
            population: The server population (generated on demand).
            checkpoint_dir: Directory for the manifest and shard files; must
                not already contain a checkpoint.
            num_shards: How many shards to split the census into.
            stop_after_shards: Stop (returning ``None``) after completing
                this many shards in this invocation — lets callers spread
                one census over several invocations or simulate a kill.
            settings: Free-form dict stored in the manifest (the CLI keeps
                everything needed to rebuild population + classifier here).

        Returns:
            The merged :class:`CensusReport` if every shard completed in
            this invocation, else ``None`` (resume later).
        """
        _validate_stop_after(stop_after_shards)
        records = self._records(population)
        checkpoint = CensusCheckpoint.create(
            checkpoint_dir, seed=self.config.seed, num_shards=num_shards,
            fingerprint=self._fingerprint(population),
            population_size=len(records), settings=settings)
        return self._run_pending_shards(checkpoint, population,
                                        stop_after_shards)

    def resume(self, population: ServerPopulation,
               checkpoint_dir, *,
               stop_after_shards: int | None = None) -> CensusReport | None:
        """Continue an interrupted sharded census from its checkpoint.

        Completed shards are skipped (their outcomes are reloaded from disk
        at merge time); pending shards are re-run from scratch. Because each
        server's random stream is derived only from the census seed and the
        server's population position, the merged report is bit-identical to
        an uninterrupted monolithic :meth:`run` — regardless of shard count,
        interruption point, or backend.

        Args:
            population: The same population the checkpoint was created with.
            checkpoint_dir: Directory of the existing checkpoint.
            stop_after_shards: As for :meth:`run_sharded`.

        Returns:
            The merged :class:`CensusReport` once every shard is complete,
            else ``None``.

        Raises:
            repro.core.checkpoint.CheckpointError: If the checkpoint is
                missing, corrupt, or was created with a different
                census/population/classifier configuration.
        """
        _validate_stop_after(stop_after_shards)
        checkpoint = CensusCheckpoint.open(checkpoint_dir)
        checkpoint.verify_fingerprint(self._fingerprint(population))
        return self._run_pending_shards(checkpoint, population,
                                        stop_after_shards)

    @staticmethod
    def checkpoint_status(checkpoint_dir) -> dict:
        """Progress summary of a checkpoint directory (see CLI ``status``).

        Args:
            checkpoint_dir: Directory of an existing checkpoint.

        Returns:
            The checkpoint's :meth:`~repro.core.checkpoint.CensusCheckpoint.status`
            dict (seed, completed/pending shards, settings).
        """
        return CensusCheckpoint.open(checkpoint_dir).status()

    @staticmethod
    def merge_checkpoint(checkpoint_dir) -> CensusReport:
        """Merge a fully completed checkpoint into a :class:`CensusReport`.

        Needs no classifier or population: the shard files already carry the
        classified outcomes. Outcomes are ordered by population index, so
        the merged report is bit-identical to the monolithic run.

        Args:
            checkpoint_dir: Directory of a checkpoint with no pending shards.

        Returns:
            The merged report.

        Raises:
            repro.core.checkpoint.CheckpointError: If shards are pending or
                any shard file fails validation.
        """
        return CensusCheckpoint.open(checkpoint_dir).merge_report()

    def measure_server(self, record: ServerRecord, crawler: PageSearchTool,
                       rng: np.random.Generator) -> ServerOutcome:
        """Measure a single server: crawl, probe, categorise.

        Args:
            record: The server and its emulated network condition.
            crawler: The page-searching tool to find a long page with.
            rng: The server's dedicated random stream.

        Returns:
            The fully categorised :class:`ServerOutcome`.
        """
        outcome, probe = probe_server(record, crawler, self.config, rng)
        if probe is not None:
            self._classify_pending([(outcome, probe)])
        return outcome

    # ------------------------------------------------------------- internals
    @staticmethod
    def _records(population: ServerPopulation) -> list[ServerRecord]:
        """The population's records, generating them on first use."""
        if not population.records:
            population.generate()
        return population.records

    def _fingerprint(self, population: ServerPopulation) -> str:
        """Config fingerprint binding checkpoints to this exact run."""
        return census_fingerprint(
            self.config, population,
            classifier_fingerprint=classifier_fingerprint(self.classifier))

    def _measure_indices(self, records: list[ServerRecord],
                         indices: list[int],
                         seeds: list | None = None) -> list[ServerOutcome]:
        """Probe and classify the records at ``indices``, in that order.

        Seeds are derived from the census seed and each record's position in
        the **full** population, so measuring any subset yields outcomes
        bit-identical to the same servers inside a monolithic run. Callers
        measuring several subsets pass the precomputed full-population
        ``seeds`` list to avoid re-deriving it per subset.
        """
        executor = self.executor or ParallelExecutor(
            backend=self.config.backend, max_workers=self.config.max_workers)
        if seeds is None:
            seeds = task_seeds(self.config.seed, len(records))
        tasks = [(records[i], seeds[i]) for i in indices]
        if columnar_enabled():
            # Chunk the probe phase into cohorts for the columnar engine;
            # per-record seeding keeps the outcomes bit-identical to the
            # per-server path whatever the cohort size or backend.
            size = columnar_cohort_size()
            chunks = [tasks[lo:lo + size] for lo in range(0, len(tasks), size)]
            per_chunk = executor.map(_probe_chunk_task, chunks,
                                     initializer=_init_probe_worker,
                                     initargs=(self.config,))
            partials = [pair for chunk in per_chunk for pair in chunk]
        else:
            partials = executor.map(_probe_task, tasks,
                                    initializer=_init_probe_worker,
                                    initargs=(self.config,))
        pending = [(outcome, probe) for outcome, probe in partials if probe is not None]
        self._classify_pending(pending)
        return [outcome for outcome, _ in partials]

    def _run_pending_shards(self, checkpoint: CensusCheckpoint,
                            population: ServerPopulation,
                            stop_after_shards: int | None) -> CensusReport | None:
        """Run every pending shard (up to ``stop_after_shards``), then merge."""
        records = self._records(population)
        assignments = shard_assignments(
            [record.profile.server_id for record in records],
            checkpoint.seed, checkpoint.num_shards)
        seeds = task_seeds(self.config.seed, len(records))
        completed_now = 0
        for shard_index in checkpoint.pending_shards():
            indices = assignments[shard_index]
            outcomes = self._measure_indices(records, indices, seeds=seeds)
            checkpoint.write_shard(shard_index, list(zip(indices, outcomes)))
            completed_now += 1
            if stop_after_shards is not None and completed_now >= stop_after_shards:
                break
        if checkpoint.all_complete():
            return checkpoint.merge_report(expected_size=len(records))
        return None

    def _classify_pending(self, pending: list[tuple[ServerOutcome, ProbeTrace]]) -> None:
        """Steps 5-6 for every outcome that survived the probe phase."""
        if not pending:
            return
        extractor = self.classifier.extractor
        vectors = [extractor.extract(probe) for _, probe in pending]
        w_timeouts = [probe.w_timeout for _, probe in pending]
        identifications = self.classifier.classify_vectors(vectors, w_timeouts)
        for (outcome, probe), identification in zip(pending, identifications):
            # Step 5: random forest classification with the confidence threshold.
            outcome.confidence = identification.confidence
            if not identification.unsure:
                outcome.category = identification.label
                continue
            # Step 6: an unconfident classification may still match one of the
            # shape-based special cases (Approaching w_t, Bounded Window); if
            # not, it is reported as "Unsure TCP" exactly like the paper.
            shape = detect_shape_case(probe)
            if shape is not None:
                outcome.special_case = shape
                outcome.category = shape.value
            else:
                outcome.category = UNSURE
