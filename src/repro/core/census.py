"""The Internet measurement campaign (Section VII-B of the paper).

For every server in the (synthetic) population the census:

1. runs the Web-page searching tool to find a long page on the server;
2. negotiates the smallest MSS the server accepts from CAAI's ladder;
3. probes the server, walking the ``w_timeout`` ladder 512 / 256 / 128 / 64
   until a usable pair of traces is gathered;
4. if no usable trace exists, records the reason (Section VII-B2);
5. otherwise checks for the special trace cases of Section VII-B3 and, when
   none applies, classifies the feature vector with the trained random
   forest, reporting "unsure" when fewer than 40 % of the trees agree.

The aggregated :class:`~repro.core.results.CensusReport` is the reproduction
of Table IV plus the server-information summaries of Section VII-B1.

Execution is organised in two phases so both hot paths scale:

* the **probe phase** (steps 1-4) is embarrassingly parallel; every server
  gets its own deterministic random stream (:func:`repro.parallel.task_seeds`)
  and the work fans out over a :class:`~repro.parallel.ParallelExecutor`
  (serial or multiprocessing -- bit-identical reports either way);
* the **classification phase** (steps 5-6) routes every pending feature
  vector through the forest in one vectorised batch
  (:meth:`~repro.core.classifier.CaaiClassifier.classify_vectors`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classifier import CaaiClassifier
from repro.core.gather import negotiate_probe_mss, probe_with_w_timeout_ladder
from repro.core.labels import UNSURE
from repro.core.results import CensusReport, ServerOutcome
from repro.core.special_cases import detect_shape_case, detect_stalled_case
from repro.core.trace import InvalidReason, ProbeTrace
from repro.parallel import ParallelExecutor, task_seeds
from repro.web.crawler import PageSearchTool
from repro.web.population import ServerPopulation, ServerRecord


@dataclass
class CensusConfig:
    """Parameters of a census run."""

    seed: int = 42
    #: Seconds CAAI waits between environments (slow start threshold caches).
    wait_between_environments: float = 600.0
    #: Crawl budget of the page searching tool.
    crawler_page_budget: int = 120
    #: Skip the crawler and request the default page directly (ablation).
    use_page_search: bool = True
    #: Execution backend for the probe phase (``serial`` / ``process``).
    backend: str = "serial"
    #: Worker processes for the ``process`` backend (``None`` = one per CPU).
    max_workers: int | None = None


def probe_server(record: ServerRecord, crawler: PageSearchTool,
                 config: CensusConfig,
                 rng: np.random.Generator) -> tuple[ServerOutcome, ProbeTrace | None]:
    """Steps 1-4 for one server: crawl, negotiate, probe, pre-categorise.

    Returns the partially filled outcome plus the probe when the outcome still
    needs the classification phase (``None`` otherwise). Module-level so
    worker processes can run it without shipping the trained forest.
    """
    server = record.server
    profile = record.profile
    outcome = ServerOutcome(
        server_id=profile.server_id,
        valid=False,
        true_algorithm=profile.effective_algorithm(),
        software=profile.software,
        region=profile.region,
    )

    # Step 1: find a long page (Section IV-E).
    if config.use_page_search:
        crawl = crawler.search(server.site)
        server.probe_path = crawl.best_path
    else:
        server.probe_path = server.site.default_path

    # Step 2: MSS negotiation (Table II).
    mss = negotiate_probe_mss(server)
    if mss is None:
        outcome.invalid_reason = InvalidReason.MSS_REJECTED
        return outcome, None
    outcome.mss = mss

    # Step 3: probe with the w_timeout ladder.
    probe = probe_with_w_timeout_ladder(
        server, record.condition, rng, mss,
        server_id=profile.server_id,
        wait_between_environments=config.wait_between_environments)
    if not probe.usable_for_features:
        outcome.invalid_reason = _invalid_reason(probe, profile)
        return outcome, None

    outcome.valid = True
    outcome.w_timeout = probe.w_timeout

    # Step 4: traces with no congestion-avoidance growth at all never occur
    # on the testbed and are filtered out before classification.
    special = detect_stalled_case(probe)
    if special is not None:
        outcome.special_case = special
        outcome.category = special.value
        return outcome, None

    return outcome, probe


def _invalid_reason(probe: ProbeTrace, profile) -> InvalidReason:
    reason = probe.invalid_reason or InvalidReason.INSUFFICIENT_DATA
    if reason is InvalidReason.INSUFFICIENT_DATA and profile.max_pipelined_requests <= 3:
        # The paper distinguishes "page too short" from "server accepts
        # only one or a few pipelined requests"; the observable symptom is
        # the same (the transfer stops early), so use the server property.
        return InvalidReason.TOO_FEW_REQUESTS
    return reason


# Per-worker state for the probe phase; set once per process by the executor's
# initializer so tasks only carry (record, seed).
_PROBE_WORKER: dict = {}


def _init_probe_worker(config: CensusConfig) -> None:
    _PROBE_WORKER["config"] = config
    _PROBE_WORKER["crawler"] = PageSearchTool(page_budget=config.crawler_page_budget)


def _probe_task(task: tuple[ServerRecord, np.random.SeedSequence]
                ) -> tuple[ServerOutcome, ProbeTrace | None]:
    record, seed = task
    return probe_server(record, _PROBE_WORKER["crawler"], _PROBE_WORKER["config"],
                        np.random.default_rng(seed))


@dataclass
class CensusRunner:
    """Runs the census against a server population."""

    classifier: CaaiClassifier
    config: CensusConfig = field(default_factory=CensusConfig)
    #: Overrides the backend/worker knobs of :attr:`config` when provided.
    executor: ParallelExecutor | None = None

    def __post_init__(self) -> None:
        if not self.classifier.is_trained:
            raise ValueError("the census needs a trained classifier")

    # ------------------------------------------------------------------ API
    def run(self, population: ServerPopulation) -> CensusReport:
        """Probe every server in the population and aggregate the outcomes.

        Every server draws from its own seed-derived random stream, so the
        report is identical for the serial and multiprocessing backends.
        """
        if not population.records:
            population.generate()
        records = population.records
        executor = self.executor or ParallelExecutor(
            backend=self.config.backend, max_workers=self.config.max_workers)
        tasks = list(zip(records, task_seeds(self.config.seed, len(records))))
        partials = executor.map(_probe_task, tasks,
                                initializer=_init_probe_worker,
                                initargs=(self.config,))
        pending = [(outcome, probe) for outcome, probe in partials if probe is not None]
        self._classify_pending(pending)
        report = CensusReport()
        for outcome, _ in partials:
            report.add(outcome)
        return report

    def measure_server(self, record: ServerRecord, crawler: PageSearchTool,
                       rng: np.random.Generator) -> ServerOutcome:
        """Measure a single server: crawl, probe, categorise."""
        outcome, probe = probe_server(record, crawler, self.config, rng)
        if probe is not None:
            self._classify_pending([(outcome, probe)])
        return outcome

    # ------------------------------------------------------------- internals
    def _classify_pending(self, pending: list[tuple[ServerOutcome, ProbeTrace]]) -> None:
        """Steps 5-6 for every outcome that survived the probe phase."""
        if not pending:
            return
        extractor = self.classifier.extractor
        vectors = [extractor.extract(probe) for _, probe in pending]
        w_timeouts = [probe.w_timeout for _, probe in pending]
        identifications = self.classifier.classify_vectors(vectors, w_timeouts)
        for (outcome, probe), identification in zip(pending, identifications):
            # Step 5: random forest classification with the confidence threshold.
            outcome.confidence = identification.confidence
            if not identification.unsure:
                outcome.category = identification.label
                continue
            # Step 6: an unconfident classification may still match one of the
            # shape-based special cases (Approaching w_t, Bounded Window); if
            # not, it is reported as "Unsure TCP" exactly like the paper.
            shape = detect_shape_case(probe)
            if shape is not None:
                outcome.special_case = shape
                outcome.category = shape.value
            else:
                outcome.category = UNSURE
