"""Window traces gathered by CAAI.

A *window trace* is the per-RTT sequence of congestion window estimates CAAI
measures for one (server, environment) pair: the slow start before the
emulated timeout, the window right before the timeout, and the rounds after
the timeout. A *valid* trace contains 18 post-timeout rounds (Section IV-E,
Fig. 8); anything shorter, or a probe that never reached the emulated timeout,
is invalid and is categorised by an :class:`InvalidReason`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class InvalidReason(enum.Enum):
    """Why a probe failed to produce a valid trace (Section VII-B2)."""

    #: The Web page(s) CAAI could request were too short to sustain the probe.
    INSUFFICIENT_DATA = "insufficient_data"
    #: The server accepted too few pipelined HTTP requests.
    TOO_FEW_REQUESTS = "too_few_requests"
    #: The server's window never exceeded ``w_timeout`` (Fig. 13).
    WINDOW_BELOW_W_TIMEOUT = "window_below_w_timeout"
    #: The server did not react to the emulated timeout.
    NO_TIMEOUT_RESPONSE = "no_timeout_response"
    #: The server rejected every MSS CAAI offered.
    MSS_REJECTED = "mss_rejected"
    #: The connection could not be established at all.
    CONNECTION_FAILED = "connection_failed"
    #: The probe exceeded its deadline budget (or the server went silent
    #: mid-trace) and every retry was exhausted.
    PROBE_TIMEOUT = "probe_timeout"
    #: The connection was reset mid-probe and every retry was exhausted.
    CONNECTION_RESET = "connection_reset"
    #: The worker executing the probe task died and recovery re-runs also
    #: failed; the server was never fully measured.
    WORKER_FAILED = "worker_failed"


@dataclass
class WindowTrace:
    """Per-RTT window estimates for one environment probe.

    Attributes:
        environment: name of the emulated environment ("A" or "B").
        w_timeout: the window threshold that triggers the emulated timeout.
        mss: negotiated maximum segment size in bytes.
        pre_timeout: window estimates of the rounds before the timeout,
            ``w_0 .. w_t`` in the paper's notation (the last element is the
            window right before the timeout).
        post_timeout: window estimates of the rounds after the timeout,
            ``w_{t+1} .. w_n``.
        invalid_reason: ``None`` for a valid trace.
        ack_loss_events: number of ACKs the emulated network dropped (useful
            for tests; a real CAAI cannot observe this).
    """

    environment: str
    w_timeout: int
    mss: int
    pre_timeout: list[float] = field(default_factory=list)
    post_timeout: list[float] = field(default_factory=list)
    invalid_reason: InvalidReason | None = None
    ack_loss_events: int = 0
    required_post_rounds: int = 18

    # -- validity -----------------------------------------------------------
    @property
    def is_valid(self) -> bool:
        """A valid trace saw the timeout and 18 post-timeout rounds."""
        return (self.invalid_reason is None
                and len(self.post_timeout) >= self.required_post_rounds
                and bool(self.pre_timeout))

    # -- the paper's named quantities ----------------------------------------
    @property
    def w_loss(self) -> float:
        """Window right before the timeout (``w_t`` in Fig. 8)."""
        if not self.pre_timeout:
            raise ValueError("trace has no pre-timeout rounds")
        return self.pre_timeout[-1]

    @property
    def initial_window(self) -> float:
        """The first measured window (``w_0``); not used by feature extraction."""
        if not self.pre_timeout:
            raise ValueError("trace has no pre-timeout rounds")
        return self.pre_timeout[0]

    @property
    def max_post_timeout_window(self) -> float:
        return max(self.post_timeout, default=0.0)

    def all_windows(self) -> list[float]:
        """The full trace ``w_0 .. w_n`` (pre- and post-timeout concatenated)."""
        return list(self.pre_timeout) + list(self.post_timeout)

    def __len__(self) -> int:
        return len(self.pre_timeout) + len(self.post_timeout)

    @classmethod
    def invalid(cls, environment: str, w_timeout: int, mss: int,
                reason: InvalidReason) -> "WindowTrace":
        """Build an empty invalid trace with the given reason."""
        return cls(environment=environment, w_timeout=w_timeout, mss=mss,
                   invalid_reason=reason)


@dataclass
class ProbeTrace:
    """The result of probing one server: one trace per environment."""

    trace_a: WindowTrace
    trace_b: WindowTrace
    #: ``w_timeout`` value finally used (the same for both environments).
    w_timeout: int
    #: Negotiated MSS in bytes.
    mss: int
    #: Identifier of the probed server (census bookkeeping).
    server_id: str | None = None

    @property
    def is_valid(self) -> bool:
        return self.trace_a.is_valid and self.trace_b.is_valid

    @property
    def usable_for_features(self) -> bool:
        """Whether feature extraction can work with this probe.

        Environment A must have produced a valid trace. Environment B may
        legitimately fail to reach the emulated timeout for strongly
        delay-sensitive algorithms (VEGAS interprets B's RTT step as
        congestion and stalls); that outcome is itself a feature (the
        ``reach64`` flag), so such probes are still usable.
        """
        if not self.trace_a.is_valid:
            return False
        if self.trace_b.is_valid:
            return True
        return self.trace_b.invalid_reason is InvalidReason.WINDOW_BELOW_W_TIMEOUT

    @property
    def invalid_reason(self) -> InvalidReason | None:
        """The first invalid reason encountered, if any."""
        if not self.trace_a.is_valid:
            return self.trace_a.invalid_reason or InvalidReason.INSUFFICIENT_DATA
        if not self.trace_b.is_valid:
            return self.trace_b.invalid_reason or InvalidReason.INSUFFICIENT_DATA
        return None

    def traces(self) -> tuple[WindowTrace, WindowTrace]:
        return self.trace_a, self.trace_b
