"""Census result containers and aggregation (the structure of Table IV).

Table IV of the paper reports, per ``w_timeout`` column and overall, the
percentage of Web servers identified as each TCP algorithm, the special-case
categories, and the "unsure" bucket; Section VII-B2 additionally reports the
fraction of servers for which no valid trace could be gathered and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.labels import presentation_label
from repro.core.special_cases import SpecialCase, special_case_label
from repro.core.trace import InvalidReason


@dataclass
class ServerOutcome:
    """The census outcome for one server."""

    server_id: str
    valid: bool
    w_timeout: int | None = None
    mss: int | None = None
    category: str | None = None          # algorithm label, special case, or "unsure"
    confidence: float | None = None
    invalid_reason: InvalidReason | None = None
    special_case: SpecialCase | None = None
    true_algorithm: str | None = None    # ground truth (available only in simulation)
    software: str | None = None
    region: str | None = None

    @property
    def is_special_case(self) -> bool:
        """Whether the outcome landed in one of the special-trace categories."""
        return self.special_case is not None

    # -------------------------------------------------------- serialization
    def to_json_dict(self) -> dict:
        """Plain-JSON representation used by the checkpoint layer.

        Floats round-trip exactly (``json`` serialises them with ``repr``),
        so an outcome written to a checkpoint and read back compares equal to
        the in-memory original — the property the resume parity guarantee
        rests on.

        Returns:
            A dict of JSON-native values; enum fields are stored by value.
        """
        return {
            "server_id": self.server_id,
            "valid": self.valid,
            "w_timeout": self.w_timeout,
            "mss": self.mss,
            "category": self.category,
            "confidence": self.confidence,
            "invalid_reason": (self.invalid_reason.value
                               if self.invalid_reason is not None else None),
            "special_case": (self.special_case.value
                             if self.special_case is not None else None),
            "true_algorithm": self.true_algorithm,
            "software": self.software,
            "region": self.region,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ServerOutcome":
        """Rebuild an outcome from :meth:`to_json_dict` output.

        Args:
            data: A dict previously produced by :meth:`to_json_dict`.

        Returns:
            A :class:`ServerOutcome` equal to the one that was serialised.
        """
        invalid_reason = data.get("invalid_reason")
        special_case = data.get("special_case")
        return cls(
            server_id=data["server_id"],
            valid=data["valid"],
            w_timeout=data.get("w_timeout"),
            mss=data.get("mss"),
            category=data.get("category"),
            confidence=data.get("confidence"),
            invalid_reason=(InvalidReason(invalid_reason)
                            if invalid_reason is not None else None),
            special_case=(SpecialCase(special_case)
                          if special_case is not None else None),
            true_algorithm=data.get("true_algorithm"),
            software=data.get("software"),
            region=data.get("region"),
        )


@dataclass
class CensusReport:
    """Aggregated census results."""

    outcomes: list[ServerOutcome] = field(default_factory=list)

    def add(self, outcome: ServerOutcome) -> None:
        self.outcomes.append(outcome)

    # ------------------------------------------------------------- totals
    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def valid_outcomes(self) -> list[ServerOutcome]:
        return [outcome for outcome in self.outcomes if outcome.valid]

    @property
    def invalid_outcomes(self) -> list[ServerOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.valid]

    def valid_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return len(self.valid_outcomes) / len(self.outcomes)

    # -------------------------------------------------------- Table IV view
    def w_timeout_values(self) -> list[int]:
        values = sorted({outcome.w_timeout for outcome in self.valid_outcomes
                         if outcome.w_timeout is not None}, reverse=True)
        return values

    def w_timeout_shares(self) -> dict[int, float]:
        """Fraction of valid servers whose probe succeeded at each w_timeout."""
        valid = self.valid_outcomes
        if not valid:
            return {}
        shares: dict[int, float] = {}
        for w_timeout in self.w_timeout_values():
            count = sum(1 for outcome in valid if outcome.w_timeout == w_timeout)
            shares[w_timeout] = count / len(valid)
        return shares

    def categories(self) -> list[str]:
        ordered: list[str] = []
        seen: set[str] = set()
        for outcome in self.valid_outcomes:
            if outcome.category and outcome.category not in seen:
                seen.add(outcome.category)
                ordered.append(outcome.category)
        return sorted(ordered)

    def category_percentages(self, w_timeout: int | None = None) -> dict[str, float]:
        """Percentage of valid servers per category (one Table IV column).

        ``w_timeout=None`` gives the overall column; otherwise only servers
        whose probe succeeded at that ``w_timeout`` are counted, as in the
        paper's per-column breakdown (percentages are still relative to all
        valid servers, so the columns of Table IV sum to the column share).
        """
        valid = self.valid_outcomes
        if not valid:
            return {}
        counts: dict[str, int] = {}
        for outcome in valid:
            if w_timeout is not None and outcome.w_timeout != w_timeout:
                continue
            category = outcome.category or "unsure"
            counts[category] = counts.get(category, 0) + 1
        return {category: 100.0 * count / len(valid)
                for category, count in sorted(counts.items())}

    def invalid_reason_shares(self) -> dict[str, float]:
        invalid = self.invalid_outcomes
        if not invalid:
            return {}
        counts: dict[str, int] = {}
        for outcome in invalid:
            reason = outcome.invalid_reason.value if outcome.invalid_reason else "unknown"
            counts[reason] = counts.get(reason, 0) + 1
        return {reason: count / len(invalid) for reason, count in sorted(counts.items())}

    # ---------------------------------------------------------- conclusions
    def reno_share_bounds(self) -> tuple[float, float]:
        """Lower and upper bound on the RENO share among valid servers.

        The paper reports a range because RC-small probes cannot separate
        RENO from CTCP: the lower bound counts only RENO-big, the upper bound
        adds the whole RC-small bucket.
        """
        percentages = self.category_percentages()
        reno_big = percentages.get("reno", 0.0)
        rc_small = percentages.get("rc-small", 0.0)
        return reno_big, reno_big + rc_small

    def bic_cubic_share(self) -> float:
        percentages = self.category_percentages()
        return sum(percentages.get(name, 0.0) for name in ("bic", "cubic-a", "cubic-b"))

    def ctcp_share(self) -> float:
        percentages = self.category_percentages()
        return sum(percentages.get(name, 0.0) for name in ("ctcp-a", "ctcp-b"))

    def accuracy_against_ground_truth(self) -> float:
        """Fraction of classified servers whose label matches the ground truth.

        Only meaningful in simulation, where the deployed algorithm is known.
        Servers that land in special-case, unsure or RC-small buckets are
        excluded, mirroring how the paper could only validate on its testbed.
        """
        comparable = [outcome for outcome in self.valid_outcomes
                      if outcome.true_algorithm and outcome.category
                      and outcome.category not in ("unsure", "rc-small")
                      and outcome.special_case is None]
        if not comparable:
            return 0.0
        correct = sum(1 for outcome in comparable
                      if outcome.category == outcome.true_algorithm)
        return correct / len(comparable)

    # ------------------------------------------------------------- rendering
    def table_rows(self) -> list[tuple[str, dict[int, float], float]]:
        """Rows of Table IV: (label, per-w_timeout percentages, overall)."""
        rows = []
        w_values = self.w_timeout_values()
        overall = self.category_percentages()
        per_w = {w: self.category_percentages(w) for w in w_values}
        for category in sorted(overall, key=lambda c: -overall[c]):
            label = _category_presentation(category)
            row = {w: per_w[w].get(category, 0.0) for w in w_values}
            rows.append((label, row, overall[category]))
        return rows


def _category_presentation(category: str) -> str:
    for case in SpecialCase:
        if category == case.value:
            return special_case_label(case)
    return presentation_label(category)
