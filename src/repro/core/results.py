"""Census result containers and aggregation (the structure of Table IV).

Table IV of the paper reports, per ``w_timeout`` column and overall, the
percentage of Web servers identified as each TCP algorithm, the special-case
categories, and the "unsure" bucket; Section VII-B2 additionally reports the
fraction of servers for which no valid trace could be gathered and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.labels import presentation_label
from repro.core.special_cases import SpecialCase, special_case_label
from repro.core.trace import InvalidReason

#: Per-server outcome taxonomy (docs/ROBUSTNESS.md): what the census can say
#: about a server once its probe budget is spent.
STATUS_IDENTIFIED = "identified"
STATUS_INCONCLUSIVE = "inconclusive"
STATUS_UNREACHABLE = "unreachable"
STATUS_INVALID_TRACE = "invalid_trace"

#: Invalid reasons meaning the server could not be measured at all (as
#: opposed to measured-but-unusable traces).
_UNREACHABLE_REASONS = frozenset({
    InvalidReason.CONNECTION_FAILED,
    InvalidReason.PROBE_TIMEOUT,
    InvalidReason.CONNECTION_RESET,
    InvalidReason.WORKER_FAILED,
})


@dataclass
class ServerOutcome:
    """The census outcome for one server."""

    server_id: str
    valid: bool
    w_timeout: int | None = None
    mss: int | None = None
    category: str | None = None          # algorithm label, special case, or "unsure"
    confidence: float | None = None
    invalid_reason: InvalidReason | None = None
    special_case: SpecialCase | None = None
    true_algorithm: str | None = None    # ground truth (available only in simulation)
    software: str | None = None
    region: str | None = None
    #: Probe attempts spent on this server (1 = first try succeeded).
    attempts: int = 1
    #: Total backoff the retry loop slept for, in simulated seconds.
    backoff_total: float = 0.0
    #: Injected-fault events observed while probing, as ``(kind, attempt)``.
    fault_events: tuple = ()

    @property
    def is_special_case(self) -> bool:
        """Whether the outcome landed in one of the special-trace categories."""
        return self.special_case is not None

    @property
    def status(self) -> str:
        """The outcome-taxonomy bucket this server landed in.

        Returns:
            ``identified`` (valid, confidently classified),
            ``inconclusive`` (valid but unsure), ``unreachable`` (never
            measured: connection/deadline/worker failures), or
            ``invalid_trace`` (measured, trace unusable).
        """
        if self.valid:
            if self.category == "unsure":
                return STATUS_INCONCLUSIVE
            return STATUS_IDENTIFIED
        if self.invalid_reason in _UNREACHABLE_REASONS:
            return STATUS_UNREACHABLE
        return STATUS_INVALID_TRACE

    # -------------------------------------------------------- serialization
    def to_json_dict(self) -> dict:
        """Plain-JSON representation used by the checkpoint layer.

        Floats round-trip exactly (``json`` serialises them with ``repr``),
        so an outcome written to a checkpoint and read back compares equal to
        the in-memory original — the property the resume parity guarantee
        rests on.

        Resilience accounting (``attempts``, ``backoff_total``,
        ``fault_events``, ``status``) is serialised only when it deviates
        from the no-fault defaults, so a census run without a fault plan
        writes byte-identical checkpoints to versions that predate the
        fault-injection layer.

        Returns:
            A dict of JSON-native values; enum fields are stored by value.
        """
        data = {
            "server_id": self.server_id,
            "valid": self.valid,
            "w_timeout": self.w_timeout,
            "mss": self.mss,
            "category": self.category,
            "confidence": self.confidence,
            "invalid_reason": (self.invalid_reason.value
                               if self.invalid_reason is not None else None),
            "special_case": (self.special_case.value
                             if self.special_case is not None else None),
            "true_algorithm": self.true_algorithm,
            "software": self.software,
            "region": self.region,
        }
        if self.attempts != 1 or self.backoff_total or self.fault_events:
            data["attempts"] = self.attempts
            data["backoff_total"] = self.backoff_total
            data["fault_events"] = [list(event) for event in self.fault_events]
            data["status"] = self.status
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "ServerOutcome":
        """Rebuild an outcome from :meth:`to_json_dict` output.

        Args:
            data: A dict previously produced by :meth:`to_json_dict`.

        Returns:
            A :class:`ServerOutcome` equal to the one that was serialised.
        """
        invalid_reason = data.get("invalid_reason")
        special_case = data.get("special_case")
        return cls(
            server_id=data["server_id"],
            valid=data["valid"],
            w_timeout=data.get("w_timeout"),
            mss=data.get("mss"),
            category=data.get("category"),
            confidence=data.get("confidence"),
            invalid_reason=(InvalidReason(invalid_reason)
                            if invalid_reason is not None else None),
            special_case=(SpecialCase(special_case)
                          if special_case is not None else None),
            true_algorithm=data.get("true_algorithm"),
            software=data.get("software"),
            region=data.get("region"),
            attempts=data.get("attempts", 1),
            backoff_total=data.get("backoff_total", 0.0),
            fault_events=tuple(tuple(event)
                               for event in data.get("fault_events", ())),
        )


@dataclass
class CensusReport:
    """Aggregated census results."""

    outcomes: list[ServerOutcome] = field(default_factory=list)

    def add(self, outcome: ServerOutcome) -> None:
        self.outcomes.append(outcome)

    # ------------------------------------------------------------- totals
    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def valid_outcomes(self) -> list[ServerOutcome]:
        return [outcome for outcome in self.outcomes if outcome.valid]

    @property
    def invalid_outcomes(self) -> list[ServerOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.valid]

    def valid_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return len(self.valid_outcomes) / len(self.outcomes)

    # -------------------------------------------------------- Table IV view
    def w_timeout_values(self) -> list[int]:
        values = sorted({outcome.w_timeout for outcome in self.valid_outcomes
                         if outcome.w_timeout is not None}, reverse=True)
        return values

    def w_timeout_shares(self) -> dict[int, float]:
        """Fraction of valid servers whose probe succeeded at each w_timeout."""
        valid = self.valid_outcomes
        if not valid:
            return {}
        shares: dict[int, float] = {}
        for w_timeout in self.w_timeout_values():
            count = sum(1 for outcome in valid if outcome.w_timeout == w_timeout)
            shares[w_timeout] = count / len(valid)
        return shares

    def categories(self) -> list[str]:
        ordered: list[str] = []
        seen: set[str] = set()
        for outcome in self.valid_outcomes:
            if outcome.category and outcome.category not in seen:
                seen.add(outcome.category)
                ordered.append(outcome.category)
        return sorted(ordered)

    def category_percentages(self, w_timeout: int | None = None) -> dict[str, float]:
        """Percentage of valid servers per category (one Table IV column).

        ``w_timeout=None`` gives the overall column; otherwise only servers
        whose probe succeeded at that ``w_timeout`` are counted, as in the
        paper's per-column breakdown (percentages are still relative to all
        valid servers, so the columns of Table IV sum to the column share).
        """
        valid = self.valid_outcomes
        if not valid:
            return {}
        counts: dict[str, int] = {}
        for outcome in valid:
            if w_timeout is not None and outcome.w_timeout != w_timeout:
                continue
            category = outcome.category or "unsure"
            counts[category] = counts.get(category, 0) + 1
        return {category: 100.0 * count / len(valid)
                for category, count in sorted(counts.items())}

    # ------------------------------------------------ resilience accounting
    def status_counts(self) -> dict[str, int]:
        """Servers per outcome-taxonomy bucket (docs/ROBUSTNESS.md).

        Returns:
            Counts keyed by ``identified`` / ``inconclusive`` /
            ``unreachable`` / ``invalid_trace``, sorted by key.
        """
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return dict(sorted(counts.items()))

    def retry_total(self) -> int:
        """Total extra probe attempts the census spent on retries.

        Returns:
            The sum of ``attempts - 1`` over all outcomes (0 when nothing
            was retried).
        """
        return sum(outcome.attempts - 1 for outcome in self.outcomes)

    def has_fault_accounting(self) -> bool:
        """Whether any outcome carries retry or fault-event accounting.

        Returns:
            ``True`` if at least one server was retried or observed an
            injected fault; reports from fault-free runs return ``False``
            (and serialise exactly as before the fault layer existed).
        """
        return any(outcome.attempts != 1 or outcome.fault_events
                   for outcome in self.outcomes)

    def resilience_summary(self) -> dict:
        """One-look summary of how flaky the census run was.

        Returns:
            A dict with ``status_counts``, ``retry_total`` and
            ``fault_events`` (total injected-fault observations).
        """
        return {
            "status_counts": self.status_counts(),
            "retry_total": self.retry_total(),
            "fault_events": sum(len(outcome.fault_events)
                                for outcome in self.outcomes),
        }

    def invalid_reason_shares(self) -> dict[str, float]:
        invalid = self.invalid_outcomes
        if not invalid:
            return {}
        counts: dict[str, int] = {}
        for outcome in invalid:
            reason = outcome.invalid_reason.value if outcome.invalid_reason else "unknown"
            counts[reason] = counts.get(reason, 0) + 1
        return {reason: count / len(invalid) for reason, count in sorted(counts.items())}

    # ---------------------------------------------------------- conclusions
    def reno_share_bounds(self) -> tuple[float, float]:
        """Lower and upper bound on the RENO share among valid servers.

        The paper reports a range because RC-small probes cannot separate
        RENO from CTCP: the lower bound counts only RENO-big, the upper bound
        adds the whole RC-small bucket.
        """
        percentages = self.category_percentages()
        reno_big = percentages.get("reno", 0.0)
        rc_small = percentages.get("rc-small", 0.0)
        return reno_big, reno_big + rc_small

    def bic_cubic_share(self) -> float:
        percentages = self.category_percentages()
        return sum(percentages.get(name, 0.0) for name in ("bic", "cubic-a", "cubic-b"))

    def ctcp_share(self) -> float:
        percentages = self.category_percentages()
        return sum(percentages.get(name, 0.0) for name in ("ctcp-a", "ctcp-b"))

    def accuracy_against_ground_truth(self) -> float:
        """Fraction of classified servers whose label matches the ground truth.

        Only meaningful in simulation, where the deployed algorithm is known.
        Servers that land in special-case, unsure or RC-small buckets are
        excluded, mirroring how the paper could only validate on its testbed.
        """
        comparable = [outcome for outcome in self.valid_outcomes
                      if outcome.true_algorithm and outcome.category
                      and outcome.category not in ("unsure", "rc-small")
                      and outcome.special_case is None]
        if not comparable:
            return 0.0
        correct = sum(1 for outcome in comparable
                      if outcome.category == outcome.true_algorithm)
        return correct / len(comparable)

    # ------------------------------------------------------------- rendering
    def table_rows(self) -> list[tuple[str, dict[int, float], float]]:
        """Rows of Table IV: (label, per-w_timeout percentages, overall)."""
        rows = []
        w_values = self.w_timeout_values()
        overall = self.category_percentages()
        per_w = {w: self.category_percentages(w) for w in w_values}
        for category in sorted(overall, key=lambda c: -overall[c]):
            label = _category_presentation(category)
            row = {w: per_w[w].get(category, 0.0) for w in w_values}
            rows.append((label, row, overall[category]))
        return rows


def _category_presentation(category: str) -> str:
    for case in SpecialCase:
        if category == case.value:
            return special_case_label(case)
    return presentation_label(category)
