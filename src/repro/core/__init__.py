"""CAAI: the paper's primary contribution.

The three steps of CAAI (Section III-C):

1. Trace gathering (:mod:`repro.core.gather`, :mod:`repro.core.prober`) --
   gather TCP window traces of a Web server in the two emulated network
   environments A and B.
2. Feature extraction (:mod:`repro.core.features`) -- extract the
   multiplicative decrease parameter and window growth features.
3. Algorithm classification (:mod:`repro.core.classifier`) -- identify the
   TCP algorithm with a random forest trained on testbed feature vectors.

:mod:`repro.core.training` builds the training set, :mod:`repro.core.census`
runs the Internet-measurement campaign against the synthetic population.
"""

from repro.core.census import CensusConfig, CensusRunner
from repro.core.classifier import CaaiClassifier, Identification
from repro.core.environments import (
    ENVIRONMENT_A,
    ENVIRONMENT_B,
    NetworkEnvironment,
    W_TIMEOUT_LADDER,
)
from repro.core.features import FeatureExtractor, FeatureVector
from repro.core.gather import GatherConfig, SyntheticServer, TraceGatherer
from repro.core.prober import CaaiProber, ProberConfig
from repro.core.results import CensusReport, ServerOutcome
from repro.core.special_cases import SpecialCase, detect_special_case
from repro.core.trace import InvalidReason, ProbeTrace, WindowTrace
from repro.core.training import TrainingSetBuilder, build_training_set

__all__ = [
    "CaaiClassifier",
    "CaaiProber",
    "CensusConfig",
    "CensusReport",
    "CensusRunner",
    "ENVIRONMENT_A",
    "ENVIRONMENT_B",
    "FeatureExtractor",
    "FeatureVector",
    "GatherConfig",
    "Identification",
    "InvalidReason",
    "NetworkEnvironment",
    "ProbeTrace",
    "ProberConfig",
    "ServerOutcome",
    "SpecialCase",
    "SyntheticServer",
    "TraceGatherer",
    "TrainingSetBuilder",
    "W_TIMEOUT_LADDER",
    "WindowTrace",
    "build_training_set",
    "detect_special_case",
]
