"""CAAI step 1: trace gathering (round-level engine).

This module drives a server's TCP sender through one emulated network
environment and records the per-RTT window estimates, exactly following
Section IV of the paper:

* every data packet is acknowledged (non-delayed ACKs), with the emulated RTT
  enforced by deferring the ACKs (subtask 1);
* the window of round ``i`` is estimated from the highest sequence number
  received in that round (subtask 2);
* once the window exceeds ``w_timeout`` the prober goes silent, waits for the
  server's retransmission timer, and then acknowledges everything received so
  far on every subsequent packet (the emulated timeout);
* for servers using F-RTO the prober first sends one duplicate ACK so the
  server falls back to a conventional timeout recovery;
* 18 post-timeout rounds make the trace valid (subtask 3).

The engine works at round granularity: the only stochastic element of the
path, ACK loss on the prober-to-server direction plus data-packet loss on the
reverse direction, is applied per packet with the probe's
:class:`~repro.net.conditions.NetworkCondition`. The packet-level alternative
(full discrete-event simulation including delay jitter) lives in
:mod:`repro.core.prober`; integration tests check the two agree on loss-free
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.environments import (
    DEFAULT_ENVIRONMENTS,
    NetworkEnvironment,
    VALID_TRACE_ROUNDS_AFTER_TIMEOUT,
    W_TIMEOUT_LADDER,
)
from repro.core.trace import InvalidReason, ProbeTrace, WindowTrace
from repro.net.conditions import NetworkCondition
from repro.tcp.connection import TcpSender
from repro.tcp.options import CAAI_MSS_LADDER
from repro.tcp.packet import (
    Segment,
    SegmentBlock,
    block_packet_count,
    in_sequence,
    in_sequence_blocks,
)


class ProbeableServer(Protocol):
    """What the trace gatherer needs to know about a server.

    :class:`repro.web.server.WebServer` implements this protocol for the
    census; :class:`SyntheticServer` below is the light-weight implementation
    used when building training sets.
    """

    def accepts_mss(self, mss: int) -> bool:
        """Whether the server accepts a connection with the given MSS."""

    def uses_frto(self) -> bool:
        """Whether the server runs F-RTO (needs the duplicate-ACK workaround)."""

    def open_connection(self, mss: int, now: float, requested_bytes: int) -> TcpSender | None:
        """Open a connection and return a sender loaded with response data.

        ``requested_bytes`` is how much data CAAI would like to transfer
        (enough for the whole probe); the server may load less if its pages
        are short or it ignores pipelined requests. ``None`` means the
        connection could not be established.
        """


@dataclass
class SyntheticServer:
    """Minimal :class:`ProbeableServer` wrapping a sender factory.

    Used by the training-set builder (Section VII-A), where the "server" is a
    testbed machine with a known TCP algorithm and effectively unlimited data.
    """

    algorithm_name: str
    sender_config_factory: "callable"
    minimum_mss: int = 100
    available_bytes: int | None = None
    frto: bool = False
    cached_ssthresh: float | None = None

    def accepts_mss(self, mss: int) -> bool:
        return mss >= self.minimum_mss

    def uses_frto(self) -> bool:
        return self.frto

    def open_connection(self, mss: int, now: float, requested_bytes: int) -> TcpSender | None:
        if not self.accepts_mss(mss):
            return None
        from repro.tcp.registry import create_algorithm

        config = self.sender_config_factory(mss)
        if self.cached_ssthresh is not None:
            config.initial_ssthresh = self.cached_ssthresh
        sender = TcpSender(create_algorithm(self.algorithm_name), config)
        available = requested_bytes if self.available_bytes is None else min(
            requested_bytes, self.available_bytes)
        sender.enqueue_bytes(available)
        return sender


@dataclass
class GatherConfig:
    """Parameters of one trace-gathering run."""

    w_timeout: int = 512
    mss: int = 100
    rounds_after_timeout: int = VALID_TRACE_ROUNDS_AFTER_TIMEOUT
    #: Safety bound on the slow start phase; 512-packet windows need ~10 rounds.
    max_pre_timeout_rounds: int = 40
    #: Seconds CAAI waits between environments A and B for servers that cache
    #: the slow start threshold (Section IV-C recommends about 10 minutes).
    wait_between_environments: float = 600.0
    #: Per-environment deadline budget in simulated seconds, measured from
    #: the trace's own start time (``None`` = unbounded, the historic
    #: behaviour). A trace that exceeds it is marked
    #: :attr:`~repro.core.trace.InvalidReason.PROBE_TIMEOUT`.
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.w_timeout <= 0:
            raise ValueError("w_timeout must be positive")
        if self.mss <= 0:
            raise ValueError("MSS must be positive")
        if self.rounds_after_timeout <= 0:
            raise ValueError("rounds_after_timeout must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    def required_bytes(self) -> int:
        """Upper bound on the data a full probe can consume (Section IV-E).

        Before the timeout the window roughly doubles every round up to twice
        ``w_timeout``; after the timeout at most 18 rounds of at most twice
        ``w_timeout`` packets each can be transferred.
        """
        pre = 4 * self.w_timeout
        post = 2 * self.w_timeout * self.rounds_after_timeout
        return (pre + post) * self.mss


class TraceGatherer:
    """Gathers window traces of a server in CAAI's emulated environments."""

    def __init__(self, config: GatherConfig | None = None,
                 environments: tuple[NetworkEnvironment, ...] = DEFAULT_ENVIRONMENTS):
        self.config = config or GatherConfig()
        self.environments = environments

    # ------------------------------------------------------------------ API
    def gather_probe(self, server: ProbeableServer, condition: NetworkCondition,
                     rng: np.random.Generator, server_id: str | None = None) -> ProbeTrace:
        """Probe a server in both environments and return the pair of traces.

        Args:
            server: The server to probe (anything :class:`ProbeableServer`).
            condition: The emulated path (RTT, jitter, loss).
            rng: Random stream for the per-packet loss draws.
            server_id: Optional id recorded on the resulting trace.

        Returns:
            The :class:`ProbeTrace` pairing the environment A and B traces.
        """
        start_time = 0.0
        traces = []
        for environment in self.environments:
            trace = self.gather_trace(server, environment, condition, rng,
                                      start_time=start_time)
            traces.append(trace)
            # Leave time for slow start threshold caches to expire before the
            # next environment, as CAAI does (Section IV-C).
            start_time += self.config.wait_between_environments
        trace_a, trace_b = traces
        return ProbeTrace(trace_a=trace_a, trace_b=trace_b,
                          w_timeout=self.config.w_timeout, mss=self.config.mss,
                          server_id=server_id)

    def gather_trace(self, server: ProbeableServer, environment: NetworkEnvironment,
                     condition: NetworkCondition, rng: np.random.Generator,
                     start_time: float = 0.0) -> WindowTrace:
        """Gather one window trace in one environment.

        Args:
            server: The server to probe.
            environment: The emulated environment (RTT schedule).
            condition: The emulated path (RTT, jitter, loss).
            rng: Random stream for the per-packet loss draws.
            start_time: Connection open time (lets environment B start after
                the configured inter-environment wait).

        Returns:
            The per-round :class:`WindowTrace` (possibly marked invalid).
        """
        config = self.config
        if not server.accepts_mss(config.mss):
            return WindowTrace.invalid(environment.name, config.w_timeout,
                                       config.mss, InvalidReason.MSS_REJECTED)
        sender = server.open_connection(config.mss, start_time, config.required_bytes())
        if sender is None:
            return WindowTrace.invalid(environment.name, config.w_timeout,
                                       config.mss, InvalidReason.CONNECTION_FAILED)
        return self._run_probe(sender, server, environment, condition, rng, start_time)

    # ------------------------------------------------------------- internals
    def _run_probe(self, sender: TcpSender, server: ProbeableServer,
                   environment: NetworkEnvironment, condition: NetworkCondition,
                   rng: np.random.Generator, start_time: float) -> WindowTrace:
        """Dispatch to the block or per-segment pipeline (bit-identical).

        Senders natively emitting :class:`SegmentBlock` records (the default;
        ``REPRO_SEGMENT_BLOCKS=0`` forces the historic per-packet emitter) are
        driven without materialising a single :class:`Segment` object: window
        estimation, loss draws and the ACK ladder all run on block arithmetic.
        """
        if getattr(sender, "emits_blocks", False):
            return self._run_probe_blocks(sender, server, environment,
                                          condition, rng, start_time)
        return self._run_probe_segments(sender, server, environment,
                                        condition, rng, start_time)

    def _run_probe_segments(self, sender: TcpSender, server: ProbeableServer,
                            environment: NetworkEnvironment, condition: NetworkCondition,
                            rng: np.random.Generator, start_time: float) -> WindowTrace:
        config = self.config
        trace = WindowTrace(environment=environment.name, w_timeout=config.w_timeout,
                            mss=config.mss,
                            required_post_rounds=config.rounds_after_timeout)
        now = start_time
        segments = sender.start(now)
        highest_end = 0
        highest_prev = 0

        # ---- pre-timeout phase: slow start up to the emulated timeout ------
        timed_out = False
        for round_index in range(config.max_pre_timeout_rounds):
            received = self._deliver_data(segments, condition, rng)
            if not received:
                trace.invalid_reason = InvalidReason.INSUFFICIENT_DATA
                return trace
            highest_end = max(highest_end, max(seg.end_seq for seg in received))
            window = self._window_estimate(received, highest_end, highest_prev)
            highest_prev = highest_end
            trace.pre_timeout.append(window)
            now += environment.rtt_before_timeout(round_index)
            if self._past_deadline(now, start_time):
                trace.invalid_reason = InvalidReason.PROBE_TIMEOUT
                return trace
            if window > config.w_timeout:
                timed_out = True
                break
            self._ecn_feedback(sender, len(received), condition, rng, now)
            segments, lost_acks = self._acknowledge(sender, received, condition,
                                                    rng, now, highest_end)
            trace.ack_loss_events += lost_acks
            if not segments:
                trace.invalid_reason = InvalidReason.INSUFFICIENT_DATA
                return trace
        if not timed_out:
            trace.invalid_reason = InvalidReason.WINDOW_BELOW_W_TIMEOUT
            return trace

        # ---- the emulated timeout ------------------------------------------
        deadline = sender.next_timer_deadline()
        if deadline is None:
            trace.invalid_reason = InvalidReason.NO_TIMEOUT_RESPONSE
            return trace
        now = max(now, deadline)
        if self._past_deadline(now, start_time):
            trace.invalid_reason = InvalidReason.PROBE_TIMEOUT
            return trace
        segments = sender.on_timer(now)
        if not segments:
            trace.invalid_reason = InvalidReason.NO_TIMEOUT_RESPONSE
            return trace
        if server.uses_frto():
            # One duplicate ACK makes an F-RTO server fall back to the
            # conventional timeout recovery (Section IV-C).
            sender.on_ack(highest_prev, now, is_duplicate=True)

        # ---- post-timeout phase: 18 rounds of window estimates --------------
        for post_index in range(config.rounds_after_timeout):
            if not segments:
                # The server went quiet. If it still has unacknowledged data
                # its retransmission timer will eventually fire (e.g. the ACKs
                # of a whole round were lost); otherwise it ran out of data
                # and the trace cannot reach 18 post-timeout rounds.
                deadline = sender.next_timer_deadline()
                if deadline is not None and not sender.all_data_acked():
                    now = max(now, deadline)
                    segments = sender.on_timer(now)
            received = self._deliver_data(segments, condition, rng)
            if not segments:
                trace.invalid_reason = InvalidReason.INSUFFICIENT_DATA
                return trace
            if received:
                highest_end = max(highest_end, max(seg.end_seq for seg in received))
                window = self._window_estimate(received, highest_end, highest_prev)
                highest_prev = highest_end
            else:
                window = 0.0
            trace.post_timeout.append(window)
            now += environment.rtt_after_timeout(post_index)
            if self._past_deadline(now, start_time):
                trace.invalid_reason = InvalidReason.PROBE_TIMEOUT
                return trace
            self._ecn_feedback(sender, len(received), condition, rng, now)
            segments, lost_acks = self._acknowledge(sender, received, condition,
                                                    rng, now, highest_end)
            trace.ack_loss_events += lost_acks
        return trace

    def _past_deadline(self, now: float, start_time: float) -> bool:
        """Whether the per-environment deadline budget is exhausted."""
        deadline = self.config.deadline
        return deadline is not None and now - start_time > deadline

    def _deliver_data(self, segments: list[Segment], condition: NetworkCondition,
                      rng: np.random.Generator) -> list[Segment]:
        """Apply data-direction loss; CAAI sees only the surviving packets.

        The loss draws are vectorised; ``Generator.random(n)`` consumes the
        same underlying stream as ``n`` scalar draws, so the outcome is
        bit-identical to the per-segment loop.
        """
        if condition.loss_rate <= 0.0 or not segments:
            return list(segments)
        kept = rng.random(len(segments)) >= condition.loss_rate
        return [seg for seg, keep in zip(segments, kept) if keep]

    def _ecn_feedback(self, sender: TcpSender, packet_count: int,
                      condition: NetworkCondition, rng: np.random.Generator,
                      now: float) -> None:
        """Mark the round's delivered packets and echo the count, maybe.

        One Bernoulli draw per delivered packet (vectorised, on the probe's
        own stream) when the condition's ``ecn_mark_rate`` is non-zero; the
        marked count rides back to the sender as one feedback call per round,
        just before the round's ACK ladder. The segment and block paths call
        this with identical packet counts at identical points, so their rng
        streams stay in lock step with ECN on. With the default rate of 0.0
        the method consumes no draws and makes no calls -- every historic
        trace is byte-identical.
        """
        if condition.ecn_mark_rate <= 0.0 or packet_count <= 0:
            return
        marked = int((rng.random(packet_count) < condition.ecn_mark_rate).sum())
        if marked:
            sender.ecn_feedback(marked, packet_count, now)

    def _window_estimate(self, received: list[Segment], highest_end: int,
                         highest_prev: int) -> float:
        """Estimate the round's window from the highest received sequence number.

        The retransmission round after the timeout repeats old sequence
        numbers, so the sequence-based estimate would be zero; CAAI falls back
        to counting packets there (the value is not used by feature
        extraction, which only looks at relative growth later in the trace).
        """
        by_sequence = (highest_end - highest_prev) / self.config.mss
        if by_sequence <= 0:
            return float(len(received))
        return float(by_sequence)

    def _acknowledge(self, sender: TcpSender, received: list[Segment],
                     condition: NetworkCondition, rng: np.random.Generator,
                     now: float, highest_end: int) -> tuple[list[Segment], int]:
        """Send one cumulative ACK per received data packet, subject to ACK loss.

        The round's ACK ladder is built up front and handed to the sender's
        batched run API (:meth:`~repro.tcp.connection.TcpSender.on_ack_run`);
        the sender falls back to the per-ACK engine on any non-clean run
        (retransmissions, gaps from lost ACKs), so traces are bit-identical
        to the historic one-``on_ack``-per-packet loop either way.
        """
        if not received:
            return [], 0
        ladder: list[int] = []
        cumulative = 0
        for segment in in_sequence(received):
            cumulative = max(cumulative, segment.end_seq,
                             highest_end if segment.is_retransmission else 0)
            ladder.append(cumulative)
        lost = 0
        if condition.loss_rate > 0.0:
            # One draw per ACK, exactly as the per-packet loop made them.
            dropped = rng.random(len(ladder)) < condition.loss_rate
            lost = int(dropped.sum())
            if lost:
                ladder = [value for value, drop in zip(ladder, dropped) if not drop]
        return sender.on_ack_run(ladder, now), lost

    # ------------------------------------------------- block-level pipeline
    def _run_probe_blocks(self, sender: TcpSender, server: ProbeableServer,
                          environment: NetworkEnvironment, condition: NetworkCondition,
                          rng: np.random.Generator, start_time: float) -> WindowTrace:
        """The probe driven on segment blocks: O(runs) per round, no objects.

        Mirrors :meth:`_run_probe_segments` step for step. The highest
        received sequence number is tracked both in bytes (window estimates
        are byte-based, the stream tail may be shorter than one MSS) and in
        packet-cumulative units (the sender's ACK ladder works in packets;
        acknowledging segment ``i`` always advances the cumulative point to
        ``i + 1``, which is exactly the block's ``stop_index``).
        """
        config = self.config
        trace = WindowTrace(environment=environment.name, w_timeout=config.w_timeout,
                            mss=config.mss,
                            required_post_rounds=config.rounds_after_timeout)
        now = start_time
        blocks = sender.start_native(now)
        highest_end = 0
        highest_pkt = 0
        highest_prev = 0

        # ---- pre-timeout phase: slow start up to the emulated timeout ------
        timed_out = False
        for round_index in range(config.max_pre_timeout_rounds):
            received = self._deliver_blocks(blocks, condition, rng)
            if not received:
                trace.invalid_reason = InvalidReason.INSUFFICIENT_DATA
                return trace
            for block in received:
                if block.end_seq > highest_end:
                    highest_end = block.end_seq
                if block.stop_index > highest_pkt:
                    highest_pkt = block.stop_index
            window = self._window_estimate_blocks(received, highest_end, highest_prev)
            highest_prev = highest_end
            trace.pre_timeout.append(window)
            now += environment.rtt_before_timeout(round_index)
            if self._past_deadline(now, start_time):
                trace.invalid_reason = InvalidReason.PROBE_TIMEOUT
                return trace
            if window > config.w_timeout:
                timed_out = True
                break
            self._ecn_feedback(sender, block_packet_count(received), condition,
                               rng, now)
            blocks, lost_acks = self._acknowledge_blocks(sender, received, condition,
                                                         rng, now, highest_pkt)
            trace.ack_loss_events += lost_acks
            if not blocks:
                trace.invalid_reason = InvalidReason.INSUFFICIENT_DATA
                return trace
        if not timed_out:
            trace.invalid_reason = InvalidReason.WINDOW_BELOW_W_TIMEOUT
            return trace

        # ---- the emulated timeout ------------------------------------------
        deadline = sender.next_timer_deadline()
        if deadline is None:
            trace.invalid_reason = InvalidReason.NO_TIMEOUT_RESPONSE
            return trace
        now = max(now, deadline)
        if self._past_deadline(now, start_time):
            trace.invalid_reason = InvalidReason.PROBE_TIMEOUT
            return trace
        blocks = sender.on_timer_native(now)
        if not blocks:
            trace.invalid_reason = InvalidReason.NO_TIMEOUT_RESPONSE
            return trace
        if server.uses_frto():
            # One duplicate ACK makes an F-RTO server fall back to the
            # conventional timeout recovery (Section IV-C).
            sender.on_ack_packet(highest_pkt, now, is_duplicate=True)

        # ---- post-timeout phase: 18 rounds of window estimates --------------
        for post_index in range(config.rounds_after_timeout):
            if not blocks:
                # The server went quiet. If it still has unacknowledged data
                # its retransmission timer will eventually fire (e.g. the ACKs
                # of a whole round were lost); otherwise it ran out of data
                # and the trace cannot reach 18 post-timeout rounds.
                deadline = sender.next_timer_deadline()
                if deadline is not None and not sender.all_data_acked():
                    now = max(now, deadline)
                    blocks = sender.on_timer_native(now)
            received = self._deliver_blocks(blocks, condition, rng)
            if not blocks:
                trace.invalid_reason = InvalidReason.INSUFFICIENT_DATA
                return trace
            if received:
                for block in received:
                    if block.end_seq > highest_end:
                        highest_end = block.end_seq
                    if block.stop_index > highest_pkt:
                        highest_pkt = block.stop_index
                window = self._window_estimate_blocks(received, highest_end,
                                                      highest_prev)
                highest_prev = highest_end
            else:
                window = 0.0
            trace.post_timeout.append(window)
            now += environment.rtt_after_timeout(post_index)
            if self._past_deadline(now, start_time):
                trace.invalid_reason = InvalidReason.PROBE_TIMEOUT
                return trace
            self._ecn_feedback(sender, block_packet_count(received), condition,
                               rng, now)
            blocks, lost_acks = self._acknowledge_blocks(sender, received, condition,
                                                         rng, now, highest_pkt)
            trace.ack_loss_events += lost_acks
        return trace

    def _deliver_blocks(self, blocks: list[SegmentBlock], condition: NetworkCondition,
                        rng: np.random.Generator) -> list[SegmentBlock]:
        """Apply data-direction loss to blocks, splitting around lost packets.

        One draw per covered packet in block order -- the same stream
        consumption, in the same order, as the per-segment path -- then each
        block is cut into its maximal surviving stretches.
        """
        if condition.loss_rate <= 0.0 or not blocks:
            return list(blocks)
        kept = rng.random(block_packet_count(blocks)) >= condition.loss_rate
        if kept.all():
            return list(blocks)
        out: list[SegmentBlock] = []
        offset = 0
        for block in blocks:
            count = len(block)
            mask = kept[offset:offset + count]
            offset += count
            if mask.all():
                out.append(block)
                continue
            for first, size in _surviving_stretches(mask):
                out.append(block.slice(first, first + size))
        return out

    def _window_estimate_blocks(self, received: list[SegmentBlock],
                                highest_end: int, highest_prev: int) -> float:
        """:meth:`_window_estimate` on blocks (packet-count fallback intact)."""
        by_sequence = (highest_end - highest_prev) / self.config.mss
        if by_sequence <= 0:
            return float(block_packet_count(received))
        return float(by_sequence)

    def _acknowledge_blocks(self, sender: TcpSender, received: list[SegmentBlock],
                            condition: NetworkCondition, rng: np.random.Generator,
                            now: float, highest_pkt: int) -> tuple[list[SegmentBlock], int]:
        """Send the round's ACK ladder, built from block arithmetic.

        The per-segment ladder (one cumulative ACK per received packet) is
        compressed into unit-advance stretches and repeated-cumulative runs
        in O(blocks), handed to the sender's
        :meth:`~repro.tcp.connection.TcpSender.on_ack_ladder`; ACK-direction
        loss draws stay one-per-entry on the same rng stream, fragmenting the
        stretches around dropped ACKs.
        """
        if not received:
            return [], 0
        runs: list[tuple] = []
        total = 0
        cumulative = 0

        def add_run(kind: str, value: int, count: int) -> None:
            # Adjacent blocks produce adjacent ladder entries; coalescing
            # them here is what lets one round's burst -- however many
            # emission records it arrived as -- batch as a single clean run,
            # exactly like the flat per-segment ladder did.
            if runs:
                last_kind, last_value, last_count = runs[-1]
                if kind == last_kind and (
                        (kind == "seq" and last_value + last_count == value)
                        or (kind == "rep" and last_value == value)):
                    runs[-1] = (kind, last_value, last_count + count)
                    return
            runs.append((kind, value, count))

        for block in in_sequence_blocks(received):
            count = len(block)
            total += count
            if block.is_retransmission:
                # A retransmitted packet is acknowledged at the highest
                # sequence received so far (the emulated-timeout rule).
                value = cumulative if cumulative > highest_pkt else highest_pkt
                add_run("rep", value, count)
                cumulative = value
                continue
            start, stop = block.start_index, block.stop_index
            if stop <= cumulative:
                add_run("rep", cumulative, count)
            elif start >= cumulative:
                add_run("seq", start + 1, count)
                cumulative = stop
            else:
                add_run("rep", cumulative, cumulative - start)
                add_run("seq", cumulative + 1, stop - cumulative)
                cumulative = stop
        lost = 0
        if condition.loss_rate > 0.0:
            # One draw per ACK, exactly as the per-packet loop made them.
            dropped = rng.random(total) < condition.loss_rate
            lost = int(dropped.sum())
            if lost:
                runs = _filter_ack_runs(runs, dropped)
        return sender.on_ack_ladder(runs, now), lost


def _surviving_stretches(mask: np.ndarray) -> list[tuple[int, int]]:
    """``(first_offset, length)`` of each maximal True stretch in ``mask``."""
    survivors = np.flatnonzero(mask)
    if survivors.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(survivors) > 1) + 1
    return [(int(chunk[0]), int(chunk.size))
            for chunk in np.split(survivors, breaks)]


def _filter_ack_runs(runs: list[tuple], dropped: np.ndarray) -> list[tuple]:
    """Drop per-entry ACK losses from a compressed ladder.

    ``dropped`` has one draw per ladder entry in run order. Repeated runs
    just shrink; unit-advance stretches fragment into their maximal
    surviving sub-stretches (the sender treats the resulting jumps exactly
    as it treats a ladder with holes).
    """
    kept_runs: list[tuple] = []
    offset = 0
    for kind, value, count in runs:
        mask = dropped[offset:offset + count]
        offset += count
        hits = int(mask.sum())
        if hits == 0:
            kept_runs.append((kind, value, count))
            continue
        if kind == "rep":
            if hits < count:
                kept_runs.append((kind, value, count - hits))
            continue
        for first, size in _surviving_stretches(~mask):
            kept_runs.append(("seq", value + first, size))
    return kept_runs


def probe_with_w_timeout_ladder(server: ProbeableServer, condition: NetworkCondition,
                                rng: np.random.Generator, mss: int,
                                ladder: tuple[int, ...] = W_TIMEOUT_LADDER,
                                server_id: str | None = None,
                                wait_between_environments: float = 600.0,
                                deadline: float | None = None) -> ProbeTrace:
    """Probe a server, lowering ``w_timeout`` until a valid trace is obtained.

    CAAI tries ``w_timeout`` of 512, 256, 128 and finally 64 packets
    (Section IV-B); the first value that yields valid traces in both
    environments wins. The last attempt is returned even if invalid so that
    the census can categorise the failure.

    Args:
        server: The server to probe.
        condition: The emulated path (RTT, jitter, loss).
        rng: Random stream for the per-packet loss draws.
        mss: Negotiated maximum segment size.
        ladder: ``w_timeout`` values to try, in order.
        server_id: Optional id recorded on the resulting traces.
        wait_between_environments: Seconds between the A and B probes.
        deadline: Per-environment budget in simulated seconds (``None`` =
            unbounded); see :attr:`GatherConfig.deadline`.

    Returns:
        The first usable :class:`ProbeTrace`, or the last (invalid) one.
    """
    last_probe: ProbeTrace | None = None
    for w_timeout in ladder:
        gatherer = TraceGatherer(GatherConfig(
            w_timeout=w_timeout, mss=mss,
            wait_between_environments=wait_between_environments,
            deadline=deadline))
        probe = gatherer.gather_probe(server, condition, rng, server_id=server_id)
        last_probe = probe
        if probe.usable_for_features:
            return probe
    assert last_probe is not None
    return last_probe


def negotiate_probe_mss(server: ProbeableServer,
                        ladder: tuple[int, ...] = CAAI_MSS_LADDER) -> int | None:
    """Find the smallest MSS in CAAI's ladder that the server accepts."""
    for mss in ladder:
        if server.accepts_mss(mss):
            return mss
    return None
