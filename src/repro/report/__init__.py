"""``python -m repro.report`` — the paper-reproduction command line.

This package only hosts the module entry point; the implementation lives in
:mod:`repro.cli.report` and the experiment registry itself in
:mod:`repro.experiments`.
"""

from repro.cli.report import main

__all__ = ["main"]
