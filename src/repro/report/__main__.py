"""Entry point of ``python -m repro.report``."""

import sys

from repro.cli.report import main

if __name__ == "__main__":
    sys.exit(main())
