"""``python -m repro.serve`` — the long-running census-as-a-service loop.

This package only hosts the module entry point; the implementation lives in
:mod:`repro.cli.serve` and the serving machinery in :mod:`repro.serving`.
"""

from repro.cli.serve import main

__all__ = ["main"]
