"""Entry point of ``python -m repro.serve``."""

import sys

from repro.cli.serve import main

if __name__ == "__main__":
    sys.exit(main())
