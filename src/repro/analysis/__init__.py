"""Analysis and reporting helpers.

Empirical CDFs, fixed-width table rendering and figure-series extraction used
by the benchmark harness to print each table and figure of the paper.
"""

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table, format_percentage_table
from repro.analysis.figures import ascii_series, cdf_series, summarize_cdf

__all__ = [
    "EmpiricalCdf",
    "ascii_series",
    "cdf_series",
    "format_percentage_table",
    "format_table",
    "summarize_cdf",
]
