"""Table rendering for the benchmark harness and the reproduction report.

The benchmark harness prints the reproduced tables in the same row/column
structure as the paper, and the experiment renderer emits the same data as
Markdown in ``docs/RESULTS.md``; these helpers keep both formats in one
place.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width text table.

    Args:
        headers: One string per column.
        rows: Row cells; floats are rendered with two decimals.
        title: Optional line printed above the table.

    Returns:
        The table as a multi-line string (no trailing newline).

    Raises:
        ValueError: If any row's length differs from the header count.
    """
    columns = len(headers)
    string_rows = _stringify_rows(headers, rows)
    widths = [len(str(header)) for header in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured Markdown table.

    The Markdown twin of :func:`format_table`, used by the experiment
    renderer for ``docs/RESULTS.md``. Cell text is escaped so literal pipes
    cannot break the row structure.

    Args:
        headers: One string per column.
        rows: Row cells; floats are rendered with two decimals.

    Returns:
        The ``| a | b |`` style table as a multi-line string.

    Raises:
        ValueError: If any row's length differs from the header count.
    """
    string_rows = _stringify_rows(headers, rows)
    escaped_headers = [_escape_markdown(str(header)) for header in headers]
    lines = ["| " + " | ".join(escaped_headers) + " |",
             "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in string_rows:
        lines.append("| " + " | ".join(_escape_markdown(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_percentage_table(headers: Sequence[str],
                            rows: Sequence[tuple[str, Sequence[float]]],
                            title: str | None = None,
                            decimals: int = 2) -> str:
    """Render a table whose numeric cells are percentages.

    Args:
        headers: One string per column (label column first).
        rows: ``(label, values)`` pairs; every value is formatted with
            ``decimals`` decimal places.
        title: Optional line printed above the table.
        decimals: Decimal places of the numeric cells.

    Returns:
        The table as a multi-line string.
    """
    formatted_rows = []
    for label, values in rows:
        formatted_rows.append([label] + [f"{value:.{decimals}f}" for value in values])
    return format_table(headers, formatted_rows, title=title)


def _stringify_rows(headers: Sequence[str],
                    rows: Sequence[Sequence[object]]) -> list[list[str]]:
    """Stringify cells and validate the row shape against the headers."""
    columns = len(headers)
    string_rows = [[_stringify(cell) for cell in row] for row in rows]
    for row in string_rows:
        if len(row) != columns:
            raise ValueError("all rows must have the same number of columns as headers")
    return string_rows


def _escape_markdown(cell: str) -> str:
    return cell.replace("|", "\\|")


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
