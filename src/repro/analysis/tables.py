"""Fixed-width table rendering for the benchmark harness.

The benchmark harness prints the reproduced tables in the same row/column
structure as the paper; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width text table."""
    columns = len(headers)
    string_rows = [[_stringify(cell) for cell in row] for row in rows]
    for row in string_rows:
        if len(row) != columns:
            raise ValueError("all rows must have the same number of columns as headers")
    widths = [len(str(header)) for header in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_percentage_table(headers: Sequence[str],
                            rows: Sequence[tuple[str, Sequence[float]]],
                            title: str | None = None,
                            decimals: int = 2) -> str:
    """Render a table whose numeric cells are percentages."""
    formatted_rows = []
    for label, values in rows:
        formatted_rows.append([label] + [f"{value:.{decimals}f}" for value in values])
    return format_table(headers, formatted_rows, title=title)


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
