"""Empirical cumulative distribution functions.

Several of the paper's figures are CDFs (Figs. 4, 6, 7, 10, 11); this module
provides the small amount of machinery needed to compute, query and compare
them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class EmpiricalCdf:
    """Empirical CDF of a sample."""

    values: np.ndarray
    fractions: np.ndarray

    @classmethod
    def from_samples(cls, samples) -> "EmpiricalCdf":
        ordered = np.sort(np.asarray(list(samples), dtype=float))
        if len(ordered) == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        fractions = np.arange(1, len(ordered) + 1) / len(ordered)
        return cls(values=ordered, fractions=fractions)

    def __len__(self) -> int:
        return len(self.values)

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold)."""
        return float(np.searchsorted(self.values, threshold, side="right") / len(self.values))

    def quantile(self, q: float) -> float:
        """The q-quantile of the sample (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return float(np.quantile(self.values, q))

    def median(self) -> float:
        return self.quantile(0.5)

    def evaluated_at(self, points) -> np.ndarray:
        """CDF values at the given points."""
        points = np.asarray(points, dtype=float)
        return np.searchsorted(self.values, points, side="right") / len(self.values)

    def max_difference(self, other: "EmpiricalCdf") -> float:
        """Kolmogorov-Smirnov style maximum CDF difference against another CDF."""
        grid = np.union1d(self.values, other.values)
        return float(np.max(np.abs(self.evaluated_at(grid) - other.evaluated_at(grid))))
