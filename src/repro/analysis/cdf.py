"""Empirical cumulative distribution functions.

Several of the paper's figures are CDFs (Figs. 4, 6, 7, 10, 11); this module
provides the small amount of machinery needed to compute, query and compare
them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class EmpiricalCdf:
    """Empirical CDF of a sample."""

    values: np.ndarray
    fractions: np.ndarray

    @classmethod
    def from_samples(cls, samples) -> "EmpiricalCdf":
        """Build the empirical CDF of a sample.

        Args:
            samples: Any non-empty iterable of numbers.

        Returns:
            The CDF with values sorted ascending.

        Raises:
            ValueError: If the sample is empty.
        """
        ordered = np.sort(np.asarray(list(samples), dtype=float))
        if len(ordered) == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        fractions = np.arange(1, len(ordered) + 1) / len(ordered)
        return cls(values=ordered, fractions=fractions)

    def __len__(self) -> int:
        return len(self.values)

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold) under the empirical distribution.

        Args:
            threshold: The evaluation point.

        Returns:
            The fraction of samples at or below ``threshold``.
        """
        return float(np.searchsorted(self.values, threshold, side="right") / len(self.values))

    def quantile(self, q: float) -> float:
        """The q-quantile of the sample.

        Args:
            q: Quantile level in ``[0, 1]``.

        Returns:
            The interpolated quantile value.

        Raises:
            ValueError: If ``q`` is outside ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return float(np.quantile(self.values, q))

    def median(self) -> float:
        """The sample median.

        Returns:
            The 0.5-quantile.
        """
        return self.quantile(0.5)

    def evaluated_at(self, points) -> np.ndarray:
        """CDF values at the given points.

        Args:
            points: Evaluation points (any array-like).

        Returns:
            One cumulative fraction per point.
        """
        points = np.asarray(points, dtype=float)
        return np.searchsorted(self.values, points, side="right") / len(self.values)

    def max_difference(self, other: "EmpiricalCdf") -> float:
        """Kolmogorov-Smirnov style maximum CDF difference against another CDF.

        Args:
            other: The CDF to compare against.

        Returns:
            The maximum absolute difference over the union of both value
            grids.
        """
        grid = np.union1d(self.values, other.values)
        return float(np.max(np.abs(self.evaluated_at(grid) - other.evaluated_at(grid))))
