"""Figure-series helpers.

The benchmark harness regenerates every figure of the paper as plain data
series (plus a compact ASCII rendering for quick inspection in the benchmark
output); this module holds the shared plumbing.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import EmpiricalCdf


def cdf_series(samples, points=None) -> list[tuple[float, float]]:
    """Return (value, cumulative fraction) pairs for a sample.

    If ``points`` is given the CDF is evaluated at those values, which is how
    the benchmark harness prints a compact fixed grid for each CDF figure.

    Args:
        samples: Any non-empty iterable of numbers.
        points: Optional evaluation grid; defaults to an evenly thinned
            subset of the sample values.

    Returns:
        ``(value, cumulative fraction)`` pairs.
    """
    cdf = EmpiricalCdf.from_samples(samples)
    if points is None:
        step = max(1, len(cdf.values) // 50)
        return [(float(v), float(f)) for v, f in
                zip(cdf.values[::step], cdf.fractions[::step])]
    points = np.asarray(points, dtype=float)
    return [(float(p), float(f)) for p, f in zip(points, cdf.evaluated_at(points))]


def summarize_cdf(samples, quantiles=(0.10, 0.25, 0.50, 0.75, 0.90, 0.99)) -> dict[float, float]:
    """Return selected quantiles of a sample.

    Args:
        samples: Any non-empty iterable of numbers.
        quantiles: The quantile levels to evaluate.

    Returns:
        A ``{level: value}`` dict in ``quantiles`` order.
    """
    cdf = EmpiricalCdf.from_samples(samples)
    return {float(q): cdf.quantile(q) for q in quantiles}


def ascii_series(values, width: int = 60, height: int = 12,
                 label: str = "") -> str:
    """Render a numeric series as a small ASCII chart.

    Used by the benchmark harness and the reproduction report to give a
    visual impression of the window traces of Fig. 3 without any plotting
    dependency.

    Args:
        values: The series to plot.
        width: Maximum number of columns (one per series element).
        height: Number of character rows.
        label: Optional label printed above the chart.

    Returns:
        The chart as a multi-line string (``"(empty series)"`` for an
        empty input).
    """
    values = [float(v) for v in values]
    if not values:
        return "(empty series)"
    maximum = max(values) or 1.0
    columns = values[:width]
    lines = []
    for level in range(height, 0, -1):
        threshold = maximum * level / height
        line = "".join("#" if value >= threshold else " " for value in columns)
        lines.append(line)
    axis = "-" * len(columns)
    header = f"{label} (max={maximum:.0f}, rounds={len(values)})" if label else ""
    parts = [part for part in (header, *lines, axis) if part != ""]
    return "\n".join(parts)
