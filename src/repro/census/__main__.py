"""Entry point of ``python -m repro.census``."""

import sys

from repro.cli.census import main

if __name__ == "__main__":
    sys.exit(main())
