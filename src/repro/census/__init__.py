"""``python -m repro.census`` — the checkpointed census command line.

This package only hosts the module entry point; the implementation lives in
:mod:`repro.cli.census` and the census engine itself in
:mod:`repro.core.census` / :mod:`repro.core.checkpoint`.
"""

from repro.cli.census import main

__all__ = ["main"]
