"""Segment and ACK containers used by the TCP sender and the CAAI prober.

CAAI estimates the congestion window of a remote server from the sequence
numbers of the data packets it receives (Section IV-D of the paper), so the
packet model keeps byte-level sequence numbers even though the sender
internally works in MSS-sized units.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Segment:
    """A data segment sent by the server.

    Attributes:
        seq: byte sequence number of the first payload byte.
        length: payload length in bytes (at most one MSS).
        sent_at: simulation time at which the segment left the sender.
        packet_index: zero-based index of the MSS-sized unit this segment
            carries; CAAI reasons about windows in packets, so carrying the
            index avoids repeated division at the prober.
        is_retransmission: True when the segment repeats previously sent data.
    """

    seq: int
    length: int
    sent_at: float
    packet_index: int
    is_retransmission: bool = False

    @property
    def end_seq(self) -> int:
        """Sequence number one past the last payload byte."""
        return self.seq + self.length


def in_sequence(segments: list["Segment"]) -> list["Segment"]:
    """Return ``segments`` ordered by ``end_seq``, sorting only when needed.

    The trace gatherer and the packet-level prober acknowledge a round's
    segments in sequence order. Deliveries already arrive in order in the
    overwhelmingly common case (the round-level engine never reorders; the
    netem links only reorder under jitter), so an ordered check replaces the
    unconditional key-function sort on the hot path (measured ~5x faster for
    an ordered 512-segment round, ~9 us vs ~48 us).

    Ordering by ``seq`` is equivalent to ordering by ``end_seq`` here:
    segments partition an MSS-grid stream, so ``seq1 < seq2`` implies
    ``end1 <= seq2 < end2``, and equal ``seq`` means the same packet (ties
    keep their arrival order, exactly as the stable sort did).
    """
    keys = [segment.seq for segment in segments]
    if keys == sorted(keys):
        return segments
    return sorted(segments, key=_SEQ_KEY)


_SEQ_KEY = operator.attrgetter("seq")


@dataclass(frozen=True)
class Ack:
    """A cumulative acknowledgment sent by the CAAI prober.

    Attributes:
        ack_seq: cumulative acknowledgment (next byte expected).
        sent_at: time the prober emitted the ACK.
        receive_window: advertised receive window in bytes after scaling.
        is_duplicate: True for the duplicate ACK CAAI uses to defeat F-RTO.
    """

    ack_seq: int
    sent_at: float
    receive_window: int
    is_duplicate: bool = False


@dataclass
class TransmissionRecord:
    """Book-keeping entry for an in-flight packet (used for RTT sampling)."""

    packet_index: int
    sent_at: float
    retransmitted: bool = False


@dataclass
class SegmentBatch:
    """Segments emitted by the sender in reaction to a single input event."""

    segments: list[Segment] = field(default_factory=list)

    def extend(self, more: list[Segment]) -> None:
        self.segments.extend(more)

    def __iter__(self):
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)
