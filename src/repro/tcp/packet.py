"""Segment and ACK containers used by the TCP sender and the CAAI prober.

CAAI estimates the congestion window of a remote server from the sequence
numbers of the data packets it receives (Section IV-D of the paper), so the
packet model keeps byte-level sequence numbers even though the sender
internally works in MSS-sized units.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Segment:
    """A data segment sent by the server.

    Attributes:
        seq: byte sequence number of the first payload byte.
        length: payload length in bytes (at most one MSS).
        sent_at: simulation time at which the segment left the sender.
        packet_index: zero-based index of the MSS-sized unit this segment
            carries; CAAI reasons about windows in packets, so carrying the
            index avoids repeated division at the prober.
        is_retransmission: True when the segment repeats previously sent data.
        ecn_ce: True when a link marked the segment with the ECN
            congestion-experienced codepoint instead of dropping it (the
            ``ecn_mark_probability`` knob, default off -- every segment on an
            ECN-free path carries False, exactly as before the field existed).
        end_seq: sequence number one past the last payload byte. Stored at
            construction rather than computed per access: the gather/ACK hot
            path reads it several times per packet (1.7M property calls in a
            small training build), and a slot read is ~4x cheaper than a
            property call. Derived from ``seq + length``, excluded from
            equality so the value semantics match the historic property.
    """

    seq: int
    length: int
    sent_at: float
    packet_index: int
    is_retransmission: bool = False
    ecn_ce: bool = False
    end_seq: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "end_seq", self.seq + self.length)


def in_sequence(segments: list["Segment"]) -> list["Segment"]:
    """Return ``segments`` ordered by ``end_seq``, sorting only when needed.

    The trace gatherer and the packet-level prober acknowledge a round's
    segments in sequence order. Deliveries already arrive in order in the
    overwhelmingly common case (the round-level engine never reorders; the
    netem links only reorder under jitter), so an ordered check replaces the
    unconditional key-function sort on the hot path (measured ~5x faster for
    an ordered 512-segment round, ~9 us vs ~48 us).

    Ordering by ``seq`` is equivalent to ordering by ``end_seq`` here:
    segments partition an MSS-grid stream, so ``seq1 < seq2`` implies
    ``end1 <= seq2 < end2``, and equal ``seq`` means the same packet (ties
    keep their arrival order, exactly as the stable sort did).
    """
    keys = [segment.seq for segment in segments]
    if keys == sorted(keys):
        return segments
    return sorted(segments, key=_SEQ_KEY)


_SEQ_KEY = operator.attrgetter("seq")


@dataclass(frozen=True, slots=True)
class SegmentBlock:
    """A contiguous run of MSS-grid segments sent in one burst.

    The round-level probe engine only ever needs *which byte ranges were sent
    when*, so a round's transmissions are shipped as one (or a few) of these
    records instead of one :class:`Segment` object per packet: emission and
    bookkeeping become O(runs) instead of O(cwnd). Packets
    ``start_index .. stop_index - 1`` all carry ``mss`` payload bytes except
    the last one, whose length is ``last_length`` (shorter only when the block
    ends at the tail of the send stream).

    The packet-level prober and the netem links expand blocks back into
    individual :class:`Segment` objects via :meth:`segments`, so the
    discrete-event path is untouched semantically.
    """

    start_index: int
    stop_index: int
    mss: int
    sent_at: float
    last_length: int
    is_retransmission: bool = False

    def __post_init__(self) -> None:
        if self.stop_index <= self.start_index:
            raise ValueError("a segment block must cover at least one packet")
        if not 0 < self.last_length <= self.mss:
            raise ValueError("last_length must be in (0, mss]")

    def __len__(self) -> int:
        return self.stop_index - self.start_index

    @property
    def start_seq(self) -> int:
        """Byte sequence number of the block's first payload byte."""
        return self.start_index * self.mss

    @property
    def end_seq(self) -> int:
        """Sequence number one past the block's last payload byte."""
        return (self.stop_index - 1) * self.mss + self.last_length

    def slice(self, start: int, stop: int) -> "SegmentBlock":
        """Sub-block covering the block-relative packets ``[start, stop)``.

        Used by the gatherer to split a block around lost packets; the tail
        length is preserved only when the slice still ends at the block's last
        packet.
        """
        if not 0 <= start < stop <= len(self):
            raise ValueError("slice out of range")
        new_stop = self.start_index + stop
        last_length = self.last_length if new_stop == self.stop_index else self.mss
        return SegmentBlock(start_index=self.start_index + start,
                            stop_index=new_stop, mss=self.mss,
                            sent_at=self.sent_at, last_length=last_length,
                            is_retransmission=self.is_retransmission)

    def segments(self):
        """Yield the block's packets as individual :class:`Segment` objects.

        The expansion is bit-identical to what the per-packet emitter would
        have produced for the same transmission.
        """
        mss = self.mss
        sent_at = self.sent_at
        retransmission = self.is_retransmission
        last = self.stop_index - 1
        for index in range(self.start_index, self.stop_index):
            yield Segment(seq=index * mss,
                          length=self.last_length if index == last else mss,
                          sent_at=sent_at, packet_index=index,
                          is_retransmission=retransmission)


def expand_blocks(blocks: list["SegmentBlock"]) -> list[Segment]:
    """Flatten segment blocks into the equivalent per-packet segment list."""
    segments: list[Segment] = []
    for block in blocks:
        segments.extend(block.segments())
    return segments


def block_packet_count(blocks: list["SegmentBlock"]) -> int:
    """Total number of packets covered by ``blocks``."""
    return sum(block.stop_index - block.start_index for block in blocks)


def in_sequence_blocks(blocks: list["SegmentBlock"]) -> list["SegmentBlock"]:
    """Return ``blocks`` ordered by sequence number, sorting only when needed.

    Blocks emitted by one sender never interleave byte ranges (a
    retransmission block repeats data strictly below any new-data block of
    the same burst), so a stable sort on ``start_index`` orders the expanded
    segments exactly as :func:`in_sequence` would.
    """
    keys = [block.start_index for block in blocks]
    if keys == sorted(keys):
        return blocks
    return sorted(blocks, key=_BLOCK_KEY)


_BLOCK_KEY = operator.attrgetter("start_index")


@dataclass(frozen=True)
class Ack:
    """A cumulative acknowledgment sent by the CAAI prober.

    Attributes:
        ack_seq: cumulative acknowledgment (next byte expected).
        sent_at: time the prober emitted the ACK.
        receive_window: advertised receive window in bytes after scaling.
        is_duplicate: True for the duplicate ACK CAAI uses to defeat F-RTO.
    """

    ack_seq: int
    sent_at: float
    receive_window: int
    is_duplicate: bool = False


@dataclass
class TransmissionRecord:
    """Book-keeping entry for an in-flight packet (used for RTT sampling)."""

    packet_index: int
    sent_at: float
    retransmitted: bool = False


@dataclass
class SegmentBatch:
    """Segments emitted by the sender in reaction to a single input event."""

    segments: list[Segment] = field(default_factory=list)

    def extend(self, more: list[Segment]) -> None:
        self.segments.extend(more)

    def __iter__(self):
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)
