"""Slow start policies.

The paper (Section V-A) relies on the fact that the standard slow start is the
default in deployed stacks and that CUBIC's hybrid slow start behaves exactly
like the standard slow start in CAAI's emulated environments (the RTT does not
change during the post-timeout slow start and is long). Both policies are
implemented so that claim can be tested rather than assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.tcp.base import CongestionState


def loop_slow_start_run(policy, state: CongestionState, now: float,
                         rtt_sample: float | None, count: int) -> int:
    """Generic batched slow start: loop the policy's per-ACK hook.

    Replicates the sender's scalar slow-start step -- policy growth followed
    by the ssthresh overshoot clamp -- for up to ``count`` ACKs, stopping when
    slow start exits. Returns the number of ACKs consumed.
    """
    consumed = 0
    while consumed < count and state.in_slow_start():
        before = state.cwnd
        policy.on_ack(state, now, rtt_sample)
        ssthresh = state.ssthresh
        if math.isfinite(ssthresh):
            upper = ssthresh if ssthresh >= before else before
            if state.cwnd > upper:
                state.cwnd = upper
        consumed += 1
    return consumed


class StandardSlowStart:
    """RFC 5681 slow start: one packet of growth per received ACK."""

    name = "standard"

    def on_ack(self, state: CongestionState, now: float, rtt_sample: float | None) -> None:
        state.cwnd += 1.0

    def on_ack_run(self, state: CongestionState, now: float,
                   rtt_sample: float | None, count: int) -> int:
        """Consume up to ``count`` slow-start ACKs in one call.

        Bit-identical to the per-ACK path: with an infinite threshold and an
        integral window the repeated ``+= 1.0`` is exact integer float
        arithmetic, so the growth collapses to a single addition; otherwise a
        tight loop replays the scalar operations. Returns the ACKs consumed
        (the remainder of the run belongs to congestion avoidance).
        """
        cwnd = state.cwnd
        ssthresh = state.ssthresh
        if not math.isfinite(ssthresh):
            if cwnd.is_integer():
                state.cwnd = cwnd + count
            else:
                for _ in range(count):
                    cwnd += 1.0
                state.cwnd = cwnd
            return count
        consumed = 0
        while consumed < count and cwnd < ssthresh:
            before = cwnd
            cwnd += 1.0
            upper = ssthresh if ssthresh >= before else before
            if cwnd > upper:
                cwnd = upper
            consumed += 1
        state.cwnd = cwnd
        return consumed

    def on_round_start(self, state: CongestionState, now: float) -> None:
        """No per-round state for the standard policy."""


@dataclass
class HybridSlowStart:
    """Hybrid slow start (Ha & Rhee, PFLDNET 2008), as used by Linux CUBIC.

    Hybrid slow start exits slow start early when either (a) the spacing of
    ACK arrivals within a round exceeds a fraction of the minimum RTT, or
    (b) the RTT of the current round has increased noticeably over the
    minimum. In CAAI's environments ACKs of one round arrive in a short burst
    and the RTT is constant during the post-timeout slow start, so neither
    trigger fires and the behaviour collapses to the standard slow start --
    exactly the property the paper needs.
    """

    #: Minimum window before hybrid slow start may trigger (Linux: 16).
    low_window: float = 16.0
    #: Number of RTT samples per round used for the delay detector (Linux: 8).
    min_samples: int = 8
    #: RTT increase threshold: exit when cur_rtt > min_rtt + max(2ms, min_rtt/8).
    delay_growth_divisor: float = 8.0
    #: ACK-train threshold as a fraction of min RTT (Linux: min_rtt / 2).
    ack_train_fraction: float = 0.5

    name: str = field(default="hybrid", init=False)
    _round_start_time: float | None = field(default=None, init=False)
    _last_ack_time: float | None = field(default=None, init=False)
    _train_detected: bool = field(default=False, init=False)
    _rtt_samples: list[float] = field(default_factory=list, init=False)
    _exit_requested: bool = field(default=False, init=False)

    def on_round_start(self, state: CongestionState, now: float) -> None:
        self._round_start_time = now
        self._last_ack_time = now
        self._rtt_samples = []
        self._train_detected = False

    def on_ack(self, state: CongestionState, now: float, rtt_sample: float | None) -> None:
        state.cwnd += 1.0
        if state.cwnd < self.low_window or not math.isfinite(state.min_rtt):
            return
        self._detect_ack_train(state, now)
        self._detect_delay_increase(state, rtt_sample)
        if self._exit_requested:
            # Exit slow start by pulling ssthresh down to the current window.
            state.ssthresh = min(state.ssthresh, state.cwnd)

    def _detect_ack_train(self, state: CongestionState, now: float) -> None:
        if self._last_ack_time is None or self._round_start_time is None:
            self._last_ack_time = now
            return
        # The train detector accumulates only while ACKs arrive closely spaced.
        if now - self._last_ack_time <= 0.002:
            train_length = now - self._round_start_time
            if train_length >= self.ack_train_fraction * state.min_rtt:
                self._exit_requested = True
        self._last_ack_time = now

    def on_ack_run(self, state: CongestionState, now: float,
                   rtt_sample: float | None, count: int) -> int:
        """Batched entry point: hybrid slow start keeps its per-ACK detectors
        (they are stateful in ACK arrival order), so the run simply loops the
        scalar hook."""
        return loop_slow_start_run(self, state, now, rtt_sample, count)

    def _detect_delay_increase(self, state: CongestionState, rtt_sample: float | None) -> None:
        if rtt_sample is None:
            return
        self._rtt_samples.append(rtt_sample)
        if len(self._rtt_samples) < self.min_samples:
            return
        current = min(self._rtt_samples[: self.min_samples])
        threshold = state.min_rtt + max(0.002, state.min_rtt / self.delay_growth_divisor)
        if current > threshold:
            self._exit_requested = True


def make_slow_start(name: str):
    """Factory for slow start policies by name (``standard`` or ``hybrid``)."""
    if name == "standard":
        return StandardSlowStart()
    if name == "hybrid":
        return HybridSlowStart()
    raise ValueError(f"unknown slow start policy: {name!r}")
