"""Retransmission timeout estimation (RFC 6298).

The emulated timeout is the centrepiece of a CAAI probe: the prober stops
acknowledging once the server's window exceeds ``w_timeout`` and waits for the
server's retransmission timer to fire. The paper notes (Section IV-B) that
initial TCP timeouts are usually between 2.5 and 6.0 seconds, which is why an
emulated RTT of 1.0 s is safe. This module reproduces the standard estimator
so those dynamics emerge rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Conservative initial RTO before any RTT sample exists (RFC 6298 uses 1 s,
#: but deployed stacks commonly use 3 s; the paper cites 2.5-6.0 s).
DEFAULT_INITIAL_RTO = 3.0
DEFAULT_MIN_RTO = 0.2
DEFAULT_MAX_RTO = 60.0
#: Floor on the variance contribution to the RTO (Linux keeps 4*rttvar at or
#: above tcp_rto_min, 200 ms). Without it a path with very stable RTTs would
#: compute an RTO barely above the RTT and time out spuriously when CAAI's
#: environment B raises the emulated RTT from 0.8 s to 1.0 s.
DEFAULT_MIN_VARIANCE_TERM = 0.25


@dataclass
class RtoEstimator:
    """Smoothed RTT / RTT variance estimator with exponential backoff."""

    initial_rto: float = DEFAULT_INITIAL_RTO
    min_rto: float = DEFAULT_MIN_RTO
    max_rto: float = DEFAULT_MAX_RTO
    min_variance_term: float = DEFAULT_MIN_VARIANCE_TERM
    alpha: float = 1.0 / 8.0
    beta: float = 1.0 / 4.0
    srtt: float | None = field(default=None, init=False)
    rttvar: float | None = field(default=None, init=False)
    backoff_exponent: int = field(default=0, init=False)

    def observe(self, rtt_sample: float) -> None:
        """Feed one RTT sample (seconds) into the estimator.

        Samples from retransmitted segments must not be fed (Karn's rule);
        the caller is responsible for that filtering.
        """
        if rtt_sample <= 0:
            raise ValueError("RTT sample must be positive")
        if self.srtt is None:
            self.srtt = rtt_sample
            self.rttvar = rtt_sample / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(self.srtt - rtt_sample)
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt_sample
        self.backoff_exponent = 0

    def observe_run(self, rtt_sample: float, count: int) -> None:
        """Feed ``count`` identical RTT samples into the estimator.

        Bit-identical to calling :meth:`observe` ``count`` times -- the loop
        performs the same floating-point operations in the same order -- but
        with the per-call attribute traffic hoisted out. The batched ACK
        engine uses this for a round's run of equally-timed ACKs, where every
        sample is the same ``now - sent_at`` value.
        """
        if count <= 0:
            return
        if rtt_sample <= 0:
            raise ValueError("RTT sample must be positive")
        srtt = self.srtt
        rttvar = self.rttvar
        if srtt is None:
            srtt = rtt_sample
            rttvar = rtt_sample / 2.0
            count -= 1
        alpha, beta = self.alpha, self.beta
        one_minus_alpha, one_minus_beta = 1 - alpha, 1 - beta
        for _ in range(count):
            rttvar = one_minus_beta * rttvar + beta * abs(srtt - rtt_sample)
            srtt = one_minus_alpha * srtt + alpha * rtt_sample
        self.srtt = srtt
        self.rttvar = rttvar
        self.backoff_exponent = 0

    @staticmethod
    def observe_run_columns(srtt, rttvar, rtt_samples, counts,
                            alpha: float = 1.0 / 8.0,
                            beta: float = 1.0 / 4.0) -> None:
        """Feed per-session RTT runs into per-session estimator columns.

        The columnar probe engine keeps one (srtt, rttvar) pair per session of
        a cohort as float64 columns (``nan`` encodes the pre-first-sample
        state) and feeds each session ``counts[i]`` copies of
        ``rtt_samples[i]`` -- one clean ACK run per session, all in lock-step.
        Updates happen in place and are bit-identical to running
        :meth:`observe_run` per session: the masked EWMA performs the same
        IEEE-754 operations in the same order, and numpy's elementwise
        add/multiply/abs on float64 round exactly like Python floats.

        Sessions whose ``counts`` entry is zero or negative are untouched
        (mirroring :meth:`observe_run`'s early return). Non-positive RTT
        samples on counted sessions raise, as in the scalar path.

        The recurrence depends only on the ``(srtt, rttvar, sample, count)``
        tuple, and a lock-step cohort carries heavily duplicated estimator
        state (replicated sessions tick through identical RTT schedules), so
        sessions are deduplicated bytewise and each distinct tuple is
        evaluated once. The EWMA is also a fixed-point iteration -- ``srtt``
        contracts towards the constant sample and ``rttvar`` towards
        ``|srtt - sample|`` -- so once the pair stops changing it never
        changes again and the remaining iterations are skipped. Both
        shortcuts are exclusive to the columnar path; the scalar
        :meth:`observe_run` stays a plain loop so the PR 3 engine's cost
        model is unchanged.
        """
        import numpy as np

        active = counts > 0
        if not active.any():
            return
        if np.any(rtt_samples[active] <= 0):
            raise ValueError("RTT sample must be positive")
        key = np.stack([srtt, rttvar, rtt_samples,
                        np.where(active, counts, 0).astype(np.float64)], axis=1)
        # Bytewise row comparison: bit-identical states collapse (including
        # the nan encoding), anything else stays distinct.
        unique, inverse = np.unique(key, axis=0, return_inverse=True)
        one_minus_alpha, one_minus_beta = 1 - alpha, 1 - beta
        out_s = np.empty(len(unique), dtype=np.float64)
        out_v = np.empty(len(unique), dtype=np.float64)
        for row, (s, v, r, n) in enumerate(unique):
            n = int(n)
            if n > 0 and s != s:  # nan: first sample initialises the pair
                s = r
                v = r / 2.0
                n -= 1
            for _ in range(n):
                new_v = one_minus_beta * v + beta * abs(s - r)
                new_s = one_minus_alpha * s + alpha * r
                if new_s == s and new_v == v:
                    break
                s, v = new_s, new_v
            out_s[row] = s
            out_v[row] = v
        updated = out_s[inverse.reshape(srtt.shape)]
        updated_v = out_v[inverse.reshape(srtt.shape)]
        srtt[active] = updated[active]
        rttvar[active] = updated_v[active]

    def current_rto(self) -> float:
        """Return the retransmission timeout, including any backoff."""
        if self.srtt is None or self.rttvar is None:
            base = self.initial_rto
        else:
            base = self.srtt + max(4.0 * self.rttvar, self.min_variance_term)
        base = min(max(base, self.min_rto), self.max_rto)
        # The exponent is capped purely to keep the arithmetic finite; the
        # max_rto clamp dominates long before the cap is reached.
        backoff = 2.0 ** min(self.backoff_exponent, 32)
        return min(base * backoff, self.max_rto)

    def back_off(self) -> None:
        """Double the RTO after a retransmission timeout (exponential backoff)."""
        self.backoff_exponent += 1

    def reset_backoff(self) -> None:
        self.backoff_exponent = 0
