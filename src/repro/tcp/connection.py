"""TCP sender state machine.

This is the server-side engine a CAAI probe exercises: it transmits MSS-sized
segments under the control of a pluggable congestion avoidance algorithm,
performs standard slow start, reacts to retransmission timeouts, and supports
the optional stack behaviours the paper has to work around -- F-RTO
(Section IV-C, "How to Deal With Forward RTO-Recovery"), slow start threshold
caching, and Linux's burstiness control (congestion window moderation).

The sender is a passive object: callers (the round-level gatherer in
:mod:`repro.core.gather`, the packet-level prober in
:mod:`repro.core.prober`, and the Web server model in
:mod:`repro.web.server`) feed it ACKs and clock readings and collect the
segments it wants to transmit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.envknobs import env_flag
from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState, MIN_CWND
from repro.tcp.packet import Segment, SegmentBlock, expand_blocks
from repro.tcp.rto import RtoEstimator
from repro.tcp.slow_start import loop_slow_start_run, make_slow_start

#: Environment knob: set ``REPRO_ACK_BATCH=0`` to force the scalar per-ACK
#: engine everywhere (the batched fast path is bit-identical, so this exists
#: for debugging and for the parity tests, not for correctness).
ACK_BATCH_ENV = "REPRO_ACK_BATCH"

#: Environment knob: set ``REPRO_SEGMENT_BLOCKS=0`` to force the historic
#: per-packet :class:`Segment` emitter. With the flag on (the default) the
#: sender materialises one :class:`SegmentBlock` record per contiguous burst
#: and keeps send times as spans, so emission is O(runs) instead of O(cwnd);
#: the block path is bit-identical (the block/object parity matrix enforces
#: it), so the knob exists for debugging and the parity tests.
SEGMENT_BLOCKS_ENV = "REPRO_SEGMENT_BLOCKS"

#: Runs shorter than this are processed by the scalar loop outright; the
#: batch bookkeeping only pays for itself on longer runs.
_MIN_BATCH_RUN = 4


def ack_batch_enabled() -> bool:
    """Whether the batched ACK fast path is enabled (read per sender).

    Returns:
        The validated value of ``REPRO_ACK_BATCH`` (default ``True``).
    """
    return env_flag(ACK_BATCH_ENV, default=True)


def segment_blocks_enabled() -> bool:
    """Whether senders natively emit segment blocks (read per sender).

    Returns:
        The validated value of ``REPRO_SEGMENT_BLOCKS`` (default ``True``).
    """
    return env_flag(SEGMENT_BLOCKS_ENV, default=True)


def _defining_class(alg_type: type, attribute: str) -> type | None:
    for klass in alg_type.__mro__:
        if attribute in vars(klass):
            return klass
    return None


def _defined_below(alg_type: type, attribute: str, anchor: type) -> bool:
    """Whether ``attribute`` is (re)defined in a proper subclass of ``anchor``."""
    defining = _defining_class(alg_type, attribute)
    return (defining is not None and defining is not anchor
            and issubclass(defining, anchor))


def _batch_override_consistent(alg_type: type) -> bool:
    """Whether the class's batch hook was written for its scalar growth rule.

    A subclass that overrides ``on_ack_avoidance`` while inheriting a batch
    override written for an ancestor's growth rule would diverge from the
    scalar engine; such classes are routed back to the safe per-ACK default.
    """
    batch_cls = _defining_class(alg_type, "on_ack_avoidance_batch")
    if batch_cls is None or batch_cls is CongestionAvoidance:
        return True
    return not _defined_below(alg_type, "on_ack_avoidance", batch_cls)


def _batch_decoupled_trusted(alg_type: type) -> bool:
    """Whether the class's ``batch_decoupled`` flag covers its growth hooks.

    The flag asserts properties of *both* growth hooks (they ignore the
    evolving ``srtt`` and ``ctx.newly_acked_packets``); a subclass that
    overrides either hook below the class that made the assertion may have
    invalidated it, so such classes fall back to the per-ACK interleaved
    path and unit-advance runs.
    """
    flag_cls = _defining_class(alg_type, "batch_decoupled")
    if flag_cls is None or flag_cls is CongestionAvoidance:
        return True  # the conservative default (False) applies anyway
    return not (_defined_below(alg_type, "on_ack_avoidance", flag_cls)
                or _defined_below(alg_type, "on_ack_slow_start", flag_cls))


@dataclass
class SenderConfig:
    """Configuration of a TCP sender.

    Most fields model standard, RFC-described behaviour; the trailing group of
    "quirk" fields models server behaviours the paper observed in the wild
    (Section VII-B3) and uses to explain its special-case traces.
    """

    mss: int = 1460
    #: Initial congestion window in packets (the paper notes 1-10 in the wild).
    initial_window: int = 2
    #: Initial slow start threshold; infinite unless ssthresh caching applies.
    initial_ssthresh: float = math.inf
    #: Peer receive window in bytes (CAAI advertises about 1 GB).
    receive_window_bytes: int = 65_535 << 14
    #: Send buffer limit in packets; None means unlimited. A finite value
    #: produces the paper's "Bounded Window" special case (Fig. 17).
    send_buffer_packets: float | None = None
    #: Slow start policy: "standard" or "hybrid".
    slow_start: str = "standard"
    #: Enable Forward RTO-Recovery (RFC 5682) spurious-timeout detection.
    use_frto: bool = False
    #: Enable Linux congestion-window moderation (burstiness control).
    use_cwnd_moderation: bool = False
    #: Packets of headroom allowed above the in-flight count when moderation
    #: is enabled (Linux max_burst is 3).
    moderation_burst: int = 3
    #: RTO estimator seed.
    initial_rto: float = 3.0
    #: Number of duplicate ACKs that trigger a fast retransmit.
    dupack_threshold: int = 3
    # ---- server quirks observed in the Internet census -------------------
    #: The server never reacts to the emulated timeout (invalid trace cause 2).
    responds_to_timeout: bool = True
    #: After a timeout the window stays at one packet ("Remaining at 1 Packet").
    post_timeout_stall: bool = False
    #: The window never grows during congestion avoidance ("Nonincreasing").
    freeze_in_avoidance: bool = False
    #: Soft ceiling the window only approaches ("Approaching w_timeout").
    approach_ceiling: float | None = None
    #: How quickly the window closes the gap to ``approach_ceiling`` per ACK.
    approach_gain: float = 0.05


@dataclass
class TimeoutEvent:
    """Record of a retransmission timeout taken by the sender."""

    at: float
    cwnd_before: float
    ssthresh_after: float


class TcpSender:
    """A TCP sender driven by per-ACK events.

    Sequence numbers are byte-based. Data is modelled as a contiguous stream;
    :meth:`enqueue_bytes` extends it (e.g. when the Web server writes another
    HTTP response). Segments are MSS-sized except possibly the last.
    """

    def __init__(self, algorithm: CongestionAvoidance, config: SenderConfig | None = None):
        self.config = config or SenderConfig()
        if self.config.mss <= 0:
            raise ValueError("MSS must be positive")
        self.algorithm = algorithm
        self.state = CongestionState(
            mss=self.config.mss,
            cwnd=float(self.config.initial_window),
            ssthresh=self.config.initial_ssthresh,
        )
        self.rto = RtoEstimator(initial_rto=self.config.initial_rto)
        self.slow_start_policy = make_slow_start(self.config.slow_start)
        self.algorithm.on_connection_start(self.state)

        self._total_bytes = 0
        self._snd_una = 0          # first unacknowledged packet index
        self._snd_nxt = 0          # next packet index to send
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._timer_deadline: float | None = None
        self._dupack_count = 0
        self._in_recovery = False
        self._recovery_point = 0
        self._frto_state = 0       # 0: inactive, 1: after RTO, 2: awaiting 2nd ACK
        self._frto_saved: tuple[float, float] | None = None
        self._round_end = 0
        self._round_start_time: float | None = None
        self._last_timeout_time: float | None = None
        self._started = False
        self._finished_timeouts: list[TimeoutEvent] = []
        self._had_timeout = False
        self._spurious_timeouts = 0

        # ---- segment-block emission wiring -------------------------------
        #: Whether transmissions are natively materialised as
        #: :class:`SegmentBlock` records (legacy callers still receive
        #: expanded :class:`Segment` objects from the non-``_native`` API).
        self._blocks_native = segment_blocks_enabled()
        #: Send-time bookkeeping for the block emitter: ordered, disjoint
        #: ``[start, stop, sent_at]`` spans (the per-packet dict equivalent).
        self._send_spans: list[list] = []
        #: Number of :class:`Segment` objects this sender materialised
        #: (diagnostics; the block engine's whole point is keeping this 0
        #: on the round-level probe path).
        self.segment_objects = 0
        #: Number of :class:`SegmentBlock` records emitted (diagnostics).
        self.block_records = 0

        # ---- batched ACK engine wiring ----------------------------------
        self._batch_enabled = ack_batch_enabled()
        #: Number of ACK runs the fast path processed (diagnostics/tests).
        self.batch_runs = 0
        alg_type = type(algorithm)
        self._alg_uses_policy_ss = (
            alg_type.on_ack_slow_start is CongestionAvoidance.on_ack_slow_start)
        consistent = _batch_override_consistent(alg_type)
        self._batch_decoupled = (consistent
                                 and _batch_decoupled_trusted(alg_type)
                                 and bool(getattr(algorithm, "batch_decoupled", False)))
        if consistent:
            self._avoidance_batch = algorithm.on_ack_avoidance_batch
        else:
            self._avoidance_batch = (
                lambda state, ctx, count:
                CongestionAvoidance.on_ack_avoidance_batch(algorithm, state, ctx, count))
        self._policy_ack_run = getattr(self.slow_start_policy, "on_ack_run", None)

    # ------------------------------------------------------------------ data
    @property
    def total_packets(self) -> int:
        """Number of MSS-grid packets the enqueued byte stream spans."""
        return -(-self._total_bytes // self.config.mss) if self._total_bytes else 0

    @property
    def snd_una(self) -> int:
        """First unacknowledged packet index (the cumulative ACK point)."""
        return self._snd_una

    @property
    def snd_nxt(self) -> int:
        """Next packet index to be sent for the first time."""
        return self._snd_nxt

    @property
    def bytes_available(self) -> int:
        """Total application bytes enqueued so far."""
        return self._total_bytes

    @property
    def timeouts(self) -> list[TimeoutEvent]:
        """Retransmission timeouts fired so far, in firing order."""
        return list(self._finished_timeouts)

    @property
    def spurious_timeouts(self) -> int:
        """Timeouts later detected as spurious by F-RTO."""
        return self._spurious_timeouts

    def enqueue_bytes(self, nbytes: int) -> None:
        """Append application data (an HTTP response) to the send stream.

        Args:
            nbytes: Number of bytes to append; must be non-negative.
        """
        if nbytes < 0:
            raise ValueError("cannot enqueue a negative number of bytes")
        self._total_bytes += nbytes

    def all_data_acked(self) -> bool:
        """Whether every enqueued byte has been cumulatively acknowledged.

        Returns:
            True once data exists and the ACK point covers all of it.
        """
        return self._snd_una >= self.total_packets and self.total_packets > 0

    # ----------------------------------------------------------------- clock
    def next_timer_deadline(self) -> float | None:
        """Absolute time of the pending retransmission timeout, if armed.

        Returns:
            The deadline in simulation seconds, or ``None`` when no timer
            is armed.
        """
        return self._timer_deadline

    @property
    def emits_blocks(self) -> bool:
        """Whether the ``_native`` API returns :class:`SegmentBlock` records."""
        return self._blocks_native

    def _expand(self, emitted: list) -> list[Segment]:
        """Adapt the native emission to the legacy per-packet Segment API."""
        if not self._blocks_native or not emitted:
            return emitted
        segments = expand_blocks(emitted)
        self.segment_objects += len(segments)
        return segments

    # ----------------------------------------------------------------- start
    def start(self, now: float) -> list[Segment]:
        """Transmit the initial window once the first request has been read.

        Args:
            now: Current simulation time.

        Returns:
            The transmitted segments (empty on a repeated call).
        """
        return self._expand(self.start_native(now))

    def start_native(self, now: float) -> list:
        """:meth:`start`, returning the native emission (blocks or segments).

        Args:
            now: Current simulation time.

        Returns:
            :class:`SegmentBlock` records when block emission is enabled,
            else :class:`Segment` objects.
        """
        if self._started:
            return []
        self._started = True
        self._round_start_time = now
        emitted = self._transmit_new_data(now)
        self._round_end = self._snd_nxt
        return emitted

    # ------------------------------------------------------------------ ACKs
    def on_ack(self, ack_seq: int, now: float, *, is_duplicate: bool = False) -> list[Segment]:
        """Process a cumulative ACK for all bytes below ``ack_seq``.

        Args:
            ack_seq: Cumulative byte sequence number being acknowledged.
            now: Current simulation time.
            is_duplicate: Whether the receiver flagged this as a duplicate.

        Returns:
            The segments the sender transmits in response.
        """
        return self._expand(self.on_ack_native(ack_seq, now, is_duplicate=is_duplicate))

    def on_ack_native(self, ack_seq: int, now: float, *, is_duplicate: bool = False) -> list:
        """:meth:`on_ack`, returning the native emission (blocks or segments).

        Args:
            ack_seq: Cumulative byte sequence number being acknowledged.
            now: Current simulation time.
            is_duplicate: Whether the receiver flagged this as a duplicate.

        Returns:
            The native emission records transmitted in response.
        """
        ack_packets = ack_seq // self.config.mss
        if ack_seq >= self._total_bytes and self._total_bytes > 0:
            ack_packets = max(ack_packets, self.total_packets)
        if is_duplicate or ack_packets <= self._snd_una:
            return self._on_duplicate_ack(now)
        return self._on_new_ack(ack_packets, now)

    def ecn_feedback(self, marked: int, acked: int, now: float) -> None:
        """Report receiver-echoed ECN congestion marks to the algorithm.

        Called by a receiver (the trace gatherer's block path, or the
        packet-level prober) when ``marked`` of ``acked`` recently delivered
        data packets carried the congestion-experienced codepoint. Forwarded
        straight to the algorithm's ``on_ecn_feedback`` hook -- never through
        the per-ACK engines, so the batched, segment-block and scalar tiers
        all see the identical call sequence. Callers only invoke this when a
        link actually marked (the default-off knob), so ECN-free runs are
        byte-identical with or without the plumbing.

        Args:
            marked: Number of packets delivered with a CE mark.
            acked: Total packets the feedback covers (``marked <= acked``).
            now: Current simulation time.
        """
        if marked < 0 or acked < marked:
            raise ValueError(f"ECN feedback needs 0 <= marked <= acked, "
                             f"got marked={marked}, acked={acked}")
        self.algorithm.on_ecn_feedback(self.state, marked, acked)

    def on_ack_packet(self, ack_packets: int, now: float, *,
                      is_duplicate: bool = False) -> list:
        """Process a cumulative ACK expressed in packet units (native API).

        ``ack_packets`` is the number of fully acknowledged MSS-grid packets,
        i.e. the value ``on_ack`` derives from a byte sequence number; the
        block-level gatherer works in packet units throughout, so this entry
        point skips the byte conversion.

        Args:
            ack_packets: Count of fully acknowledged packets.
            now: Current simulation time.
            is_duplicate: Whether the receiver flagged this as a duplicate.

        Returns:
            The native emission records transmitted in response.
        """
        if is_duplicate or ack_packets <= self._snd_una:
            return self._on_duplicate_ack(now)
        return self._on_new_ack(ack_packets, now)

    def on_ack_run(self, ack_values: Sequence[int], now: float) -> list[Segment]:
        """Process a round's run of in-order cumulative ACKs in one call.

        Behaviour is identical to feeding the values one by one to
        :meth:`on_ack`. The batched fast path consumes the longest *clean*
        prefix of the remaining run -- monotone advances within the current
        round, no recovery or F-RTO state, no quirk configuration, uniform
        send times -- and any ACK that breaks the clean shape (a duplicate, a
        retransmitted packet, a round-boundary crossing) is handed to the
        scalar per-ACK engine before the fast path re-engages, so every trace
        is bit-identical either way (the batch/scalar parity test matrix
        enforces this).

        Args:
            ack_values: The round's cumulative byte ACK values, in arrival
                order.
            now: Current simulation time.

        Returns:
            The segments the sender transmits in response to the whole run.
        """
        return self._expand(self.on_ack_run_native(ack_values, now))

    def on_ack_run_native(self, ack_values: Sequence[int], now: float) -> list:
        """:meth:`on_ack_run`, returning the native emission.

        Args:
            ack_values: The round's cumulative byte ACK values, in arrival
                order.
            now: Current simulation time.

        Returns:
            The native emission records transmitted in response.
        """
        out: list = []
        n = len(ack_values)
        index = 0
        while index < n:
            if n - index >= _MIN_BATCH_RUN and self._run_eligible():
                consumed, emitted = self._on_ack_run_fast(ack_values, index, now)
                if consumed:
                    self.batch_runs += 1
                    out.extend(emitted)
                    index += consumed
                    continue
            out.extend(self.on_ack_native(ack_values[index], now))
            index += 1
        return out

    def on_ack_ladder(self, runs: Sequence[tuple], now: float) -> list:
        """Process a round's ACK ladder expressed as compact packet runs.

        ``runs`` is the ladder the gatherer would have materialised one value
        at a time, compressed into ``("seq", first, count)`` unit-advance
        stretches (packet-cumulative values ``first .. first + count - 1``)
        and ``("rep", value, count)`` repeated-cumulative entries, in ladder
        order. Behaviour is bit-identical to expanding the runs and feeding
        them to :meth:`on_ack_run` / :meth:`on_ack`: clean stretches take the
        batched fast path in O(1) bookkeeping per run (no per-ACK prefix
        scan), everything else replays through the scalar engine.

        Args:
            runs: The compressed ladder: ``("seq", first, count)`` and
                ``("rep", value, count)`` tuples in ladder order.
            now: Current simulation time.

        Returns:
            The native emission records transmitted in response.
        """
        out: list = []
        for kind, value, count in runs:
            if kind == "seq":
                first = value
                remaining = count
                while remaining:
                    if remaining >= _MIN_BATCH_RUN and self._run_eligible():
                        consumed, emitted = self._fast_packet_run(first, remaining, now)
                        if consumed:
                            self.batch_runs += 1
                            out.extend(emitted)
                            first += consumed
                            remaining -= consumed
                            continue
                    out.extend(self.on_ack_packet(first, now))
                    first += 1
                    remaining -= 1
            else:
                for _ in range(count):
                    out.extend(self.on_ack_packet(value, now))
        return out

    # ------------------------------------------------------- batched fast path
    def _run_eligible(self) -> bool:
        """Cheap config/state screening before the per-run checks."""
        config = self.config
        return (self._batch_enabled
                and self._started
                and not self._in_recovery
                and not self._frto_state
                and config.approach_ceiling is None
                and not config.use_cwnd_moderation
                and not config.freeze_in_avoidance
                and not (config.post_timeout_stall and self._had_timeout)
                and self._round_end > self._snd_una)

    def _on_ack_run_fast(self, ack_values: Sequence[int], start: int,
                         now: float) -> tuple[int, list[Segment]]:
        """Process the longest clean prefix of ``ack_values[start:]``.

        Returns ``(consumed, segments)``; ``consumed == 0`` means no prefix
        long enough for the batch bookkeeping was clean and the caller should
        take the scalar path for the next ACK.
        """
        mss = self.config.mss
        total_bytes = self._total_bytes
        total_packets = self.total_packets
        u0 = self._snd_una
        round_end = self._round_end
        decoupled = self._batch_decoupled

        # The prefix must advance the cumulative point monotonically and stay
        # within the current round. Unit advances are the shape every clean
        # CAAI round produces; larger jumps (earlier ACK or data loss) are
        # fine for decoupled algorithms, whose growth hooks ignore
        # ``newly_acked_packets``.
        positions: list[int] = []
        previous = u0
        index = start
        n = len(ack_values)
        while index < n:
            value = ack_values[index]
            pkt = value // mss
            if value >= total_bytes and total_bytes > 0:
                pkt = max(pkt, total_packets)
            if pkt <= previous or pkt > round_end:
                break
            if pkt != previous + 1 and not decoupled:
                break
            previous = pkt
            positions.append(pkt)
            index += 1
        k = len(positions)
        if k < _MIN_BATCH_RUN:
            return 0, []

        # Karn's rule screening: none of the packets the prefix samples RTTs
        # from (the newest packet each ACK covers) was retransmitted, and all
        # were sent at the same time (one round's burst); truncate the prefix
        # at the first violation.
        retransmitted = self._retransmitted
        cut = k
        if self._blocks_native:
            t0, extent_stop = self._sent_extent(positions[0] - 1)
            for offset, position in enumerate(positions):
                if position - 1 >= extent_stop:
                    cut = offset
                    break
            if retransmitted:
                for offset, position in enumerate(positions[:cut]):
                    if position - 1 in retransmitted:
                        cut = offset
                        break
        else:
            send_times = self._send_times
            t0 = send_times.get(positions[0] - 1)
            if retransmitted:
                for offset, position in enumerate(positions):
                    if (position - 1 in retransmitted
                            or send_times.get(position - 1) != t0):
                        cut = offset
                        break
            else:
                for offset, position in enumerate(positions):
                    if send_times.get(position - 1) != t0:
                        cut = offset
                        break
        if cut < k:
            if cut < _MIN_BATCH_RUN:
                return 0, []
            k = cut
            del positions[k:]
        return k, self._consume_clean_run(positions, k, t0, now)

    def _fast_packet_run(self, first: int, count: int,
                         now: float) -> tuple[int, list]:
        """Batched fast path for a unit-advance packet run, in O(1) screening.

        ``first .. first + count - 1`` are consecutive packet-cumulative ACK
        values (an arithmetic ladder stretch from :meth:`on_ack_ladder`).
        Because the run is unit-advance by construction, the per-value prefix
        scan of :meth:`_on_ack_run_fast` collapses to range arithmetic, and
        the Karn/send-time screening is a single span lookup instead of one
        dict probe per ACK. Returns ``(consumed, emitted)`` exactly like
        :meth:`_on_ack_run_fast`.
        """
        u0 = self._snd_una
        if first <= u0:
            return 0, []
        if first != u0 + 1 and not self._batch_decoupled:
            return 0, []
        k = count
        room = self._round_end - first + 1
        if k > room:
            k = room
        if k < _MIN_BATCH_RUN:
            return 0, []
        # Karn's rule screening: the packets sampled for RTTs are
        # ``first - 1 .. first - 2 + k``; they must share one send time
        # (one span) and contain no retransmission.
        t0, extent_stop = self._sent_extent(first - 1)
        extent = extent_stop - (first - 1)
        if extent < k:
            k = extent
        retransmitted = self._retransmitted
        if retransmitted:
            lo, hi = first - 1, first - 1 + k
            nearest = min((p for p in retransmitted if lo <= p < hi), default=None)
            if nearest is not None:
                k = nearest - lo
        if k < _MIN_BATCH_RUN:
            return 0, []
        return k, self._consume_clean_run(range(first, first + k), k, t0, now)

    def _consume_clean_run(self, positions, k: int, t0: float | None,
                           now: float) -> list:
        """Apply a validated clean ACK run and return the emission.

        ``positions`` (an indexable sequence of ``k`` packet-cumulative
        values; a list from the ladder scan or a ``range`` from the arithmetic
        fast path) all sample RTTs from packets sent at ``t0``.
        """
        mss = self.config.mss
        total_packets = self.total_packets
        u0 = self._snd_una
        last = positions[k - 1]
        if t0 is None:
            rtt = None
        elif self._last_timeout_time is not None and t0 < self._last_timeout_time:
            rtt = None
        else:
            rtt = max(now - t0, 1e-9)

        state = self.state
        ctx = AckContext(now=now, rtt_sample=rtt, newly_acked_packets=1)
        rwnd_packets = self.config.receive_window_bytes / mss
        send_buffer = self.config.send_buffer_packets

        def eff_int(cwnd: float) -> int:
            """``int(self.effective_window())`` with the quirks excluded."""
            window = cwnd
            if window > rwnd_packets:
                window = rwnd_packets
            if send_buffer is not None and window > send_buffer:
                window = send_buffer
            return int(window)

        snd_nxt0 = self._snd_nxt
        if rtt is not None and not self._batch_decoupled:
            cap_max = self._run_interleaved(u0, k, ctx, rtt, now, eff_int)
        else:
            # Decoupled flow: register the (identical) RTT samples once, then
            # run the growth in batch. Registration only moves ``srtt``
            # between ACKs, which decoupled algorithms never read mid-run.
            if rtt is not None:
                self.rto.observe_run(rtt, k)
                state.latest_rtt = rtt
                state.srtt = self.rto.srtt
                if rtt < state.min_rtt:
                    state.min_rtt = rtt
                if rtt > state.max_rtt:
                    state.max_rtt = rtt
            cap_max = 0
            if k > 1:
                cap_max = self._grow_run(positions, 0, k - 1, ctx, rtt, now, eff_int)
            self._grow_run(positions, k - 1, k, ctx, rtt, now, None)
        # The scalar engine adds every ACK's full packet advance to the
        # round's tally; the growth above counted one per ACK.
        extra_acked = (last - u0) - k
        if extra_acked:
            state.acked_in_round += extra_acked

        if last == self._round_end:
            # The run closes the round: replicate _maybe_complete_round (the
            # quirk suppressions were excluded by eligibility).
            state.last_round_rtt = rtt or state.latest_rtt
            round_ctx = AckContext(now=now, rtt_sample=rtt,
                                   newly_acked_packets=0, round_completed=True)
            if not state.in_slow_start():
                state.avoidance_rounds += 1
            self.algorithm.on_round_complete(state, round_ctx)
            state.acked_in_round = 0
            self._round_start_time = now
        state.clamp()

        final_cap = last + eff_int(state.cwnd)
        if final_cap > cap_max:
            cap_max = final_cap
        new_nxt = cap_max
        if new_nxt > total_packets:
            new_nxt = total_packets
        if new_nxt < snd_nxt0:
            new_nxt = snd_nxt0
        emitted = self._emit_range(snd_nxt0, new_nxt, now)
        self._snd_nxt = new_nxt
        self._snd_una = last
        self._dupack_count = 0
        self._prune_acked(u0, last)
        if self._snd_una >= self._round_end:
            self._round_end = self._snd_nxt
        if self._snd_una < self._snd_nxt or self._snd_nxt < total_packets:
            self._arm_timer(now)
        else:
            self._timer_deadline = None
        return emitted

    def _grow_run(self, positions: list[int], begin: int, end: int,
                  ctx: AckContext, rtt: float | None, now: float,
                  eff_int) -> int:
        """Window growth for the clean ACKs ``positions[begin:end]`` (decoupled).

        ``positions[i]`` is the unacknowledged point after the ``i``-th ACK
        of the run. Returns the largest per-ACK transmission cap observed
        (0 when ``eff_int`` is ``None``, i.e. the caller computes the cap
        itself after round completion).
        """
        state = self.state
        cap_max = 0
        index = begin
        if (state.in_slow_start() and self._round_start_time is not None
                and state.acked_in_round == 0):
            round_start = getattr(self.slow_start_policy, "on_round_start", None)
            if round_start is not None:
                round_start(state, now)
        while index < end:
            remaining = end - index
            if state.in_slow_start():
                # Slow start grows monotonically, so the cap at the end of
                # the consumed stretch dominates the per-ACK caps within it.
                if self._alg_uses_policy_ss:
                    if self._policy_ack_run is not None:
                        consumed = self._policy_ack_run(state, now, rtt, remaining)
                    else:
                        consumed = self._slow_start_policy_loop(remaining, now, rtt)
                else:
                    consumed = self._slow_start_algorithm_loop(remaining, ctx)
                if consumed <= 0:
                    break
                index += consumed
                if eff_int is not None:
                    cap = positions[index - 1] + eff_int(state.cwnd)
                    if cap > cap_max:
                        cap_max = cap
            else:
                # A hook may consume fewer ACKs than offered when a backoff
                # drops the window below ssthresh (slow start re-entry).
                consumed, cwnd_log = self._avoidance_batch(state, ctx, remaining)
                if consumed <= 0:
                    break
                if eff_int is not None:
                    if cwnd_log is None:
                        cap = positions[index + consumed - 1] + eff_int(state.cwnd)
                        if cap > cap_max:
                            cap_max = cap
                    else:
                        for offset, cwnd in enumerate(cwnd_log):
                            cap = positions[index + offset] + eff_int(cwnd)
                            if cap > cap_max:
                                cap_max = cap
                index += consumed
        state.acked_in_round += index - begin
        return cap_max

    def _slow_start_policy_loop(self, count: int, now: float,
                                rtt: float | None) -> int:
        """Per-ACK slow start via the policy (custom policies without a run hook)."""
        return loop_slow_start_run(self.slow_start_policy, self.state, now,
                                    rtt, count)

    def _slow_start_algorithm_loop(self, count: int, ctx: AckContext) -> int:
        """Per-ACK slow start for algorithms overriding ``on_ack_slow_start``."""
        state = self.state
        algorithm = self.algorithm
        consumed = 0
        while consumed < count and state.in_slow_start():
            before = state.cwnd
            algorithm.on_ack_slow_start(state, ctx)
            ssthresh = state.ssthresh
            if math.isfinite(ssthresh):
                upper = ssthresh if ssthresh >= before else before
                if state.cwnd > upper:
                    state.cwnd = upper
            consumed += 1
        return consumed

    def _run_interleaved(self, u0: int, k: int, ctx: AckContext, rtt: float,
                         now: float, eff_int) -> int:
        """Per-ACK registration + growth for non-decoupled algorithms.

        Keeps the scalar engine's exact interleaving (observe sample, update
        RTT state, grow) for algorithms whose growth hooks read the evolving
        ``srtt`` (Westwood+'s idle detector), while still batching everything
        around the growth. Returns the largest cap over the first ``k - 1``
        ACKs (the final ACK's cap is computed by the caller after round
        completion).
        """
        state = self.state
        algorithm = self.algorithm
        policy = self.slow_start_policy
        rto = self.rto
        observe = rto.observe
        uses_policy = self._alg_uses_policy_ss
        cap_max = 0
        last = k - 1
        for i in range(k):
            observe(rtt)
            state.latest_rtt = rtt
            state.srtt = rto.srtt
            if rtt < state.min_rtt:
                state.min_rtt = rtt
            if rtt > state.max_rtt:
                state.max_rtt = rtt
            if state.in_slow_start():
                if (self._round_start_time is not None
                        and state.acked_in_round == 0
                        and hasattr(policy, "on_round_start")):
                    policy.on_round_start(state, now)
                before = state.cwnd
                algorithm.on_ack_slow_start(state, ctx)
                if uses_policy:
                    state.cwnd = before
                    policy.on_ack(state, now, rtt)
                ssthresh = state.ssthresh
                if math.isfinite(ssthresh):
                    upper = ssthresh if ssthresh >= before else before
                    if state.cwnd > upper:
                        state.cwnd = upper
            else:
                algorithm.on_ack_avoidance(state, ctx)
            state.acked_in_round += 1
            if i < last:
                cap = (u0 + i + 1) + eff_int(state.cwnd)
                if cap > cap_max:
                    cap_max = cap
        return cap_max

    # ------------------------------------------------------------- emission
    def _emit_range(self, start: int, stop: int, now: float) -> list:
        """Emit the new-data packets ``[start, stop)`` sent at ``now``.

        The native block emitter materialises one :class:`SegmentBlock`
        record and one send-time span in O(1); the legacy emitter builds one
        :class:`Segment` object and one dict entry per packet.
        """
        if stop <= start:
            return []
        mss = self.config.mss
        total_bytes = self._total_bytes
        if self._blocks_native:
            last_seq = (stop - 1) * mss
            last_length = total_bytes - last_seq
            if last_length > mss or last_length <= 0:
                last_length = mss
            self._record_span(start, stop, now)
            self.block_records += 1
            return [SegmentBlock(start_index=start, stop_index=stop, mss=mss,
                                 sent_at=now, last_length=last_length)]
        send_times = self._send_times
        segments: list[Segment] = []
        append = segments.append
        for index in range(start, stop):
            seq = index * mss
            length = total_bytes - seq
            if length > mss or length <= 0:
                length = mss
            send_times[index] = now
            append(Segment(seq=seq, length=length, sent_at=now, packet_index=index))
        self.segment_objects += stop - start
        return segments

    # --------------------------------------------- send-time span bookkeeping
    def _record_span(self, start: int, stop: int, now: float) -> None:
        """Record the send time of new-data packets ``[start, stop)``.

        New data is emitted at strictly increasing packet indices, so the
        range either extends the newest span (same burst time) or opens a
        new one; the span list stays ordered and disjoint.
        """
        spans = self._send_spans
        if spans:
            last = spans[-1]
            if last[1] == start and last[2] == now:
                last[1] = stop
                return
        spans.append([start, stop, now])

    def _record_single(self, packet_index: int, now: float) -> None:
        """Record the (re)send time of one packet, splitting its span.

        Retransmissions overwrite the send time of a packet that sits inside
        an existing span; the span is split around it so lookups keep exact
        per-packet times. Retransmissions are rare (one per timeout or fast
        retransmit), so the linear scan over the handful of live spans is
        cheap.
        """
        spans = self._send_spans
        for index, span in enumerate(spans):
            start, stop, sent_at = span
            if start <= packet_index < stop:
                if sent_at == now:
                    return
                pieces = []
                if start < packet_index:
                    pieces.append([start, packet_index, sent_at])
                pieces.append([packet_index, packet_index + 1, now])
                if packet_index + 1 < stop:
                    pieces.append([packet_index + 1, stop, sent_at])
                spans[index:index + 1] = pieces
                return
            if start > packet_index:
                spans.insert(index, [packet_index, packet_index + 1, now])
                return
        spans.append([packet_index, packet_index + 1, now])

    def _sent_time(self, packet_index: int) -> float | None:
        """Send time of ``packet_index`` (the ``_send_times`` dict equivalent)."""
        for start, stop, sent_at in self._send_spans:
            if packet_index < start:
                return None
            if packet_index < stop:
                return sent_at
        return None

    def _sent_extent(self, packet_index: int) -> tuple[float | None, int]:
        """``(sent_at, stop)`` of the span covering ``packet_index``.

        ``stop`` is the first packet index past ``packet_index`` that does
        *not* share its send time; when the packet has no recorded time the
        extent is empty (``stop == packet_index + 1`` with a ``None`` time),
        which sends the caller to the scalar engine.
        """
        for start, stop, sent_at in self._send_spans:
            if packet_index < start:
                break
            if packet_index < stop:
                return sent_at, stop
        return None, packet_index + 1

    def _prune_acked(self, start: int, stop: int) -> None:
        """Drop send bookkeeping for packets now below ``snd_una``.

        RTT samples are only ever taken for the newest packet a cumulative
        ACK covers (always at or above the pre-ACK ``snd_una``), so entries
        below the advanced point can never be read again; pruning them keeps
        the bookkeeping bounded by the in-flight count instead of growing
        over the whole probe. Karn's rule is untouched: the retransmission
        marker is only consulted before the advance. A run that did not
        advance ``snd_una`` skips the pass entirely.
        """
        if stop <= start:
            return
        if self._blocks_native:
            spans = self._send_spans
            while spans and spans[0][1] <= stop:
                spans.pop(0)
            if spans and spans[0][0] < stop:
                spans[0][0] = stop
        else:
            send_times = self._send_times
            for index in range(start, stop):
                send_times.pop(index, None)
        retransmitted = self._retransmitted
        if retransmitted:
            for index in [p for p in retransmitted if start <= p < stop]:
                retransmitted.discard(index)

    def _on_duplicate_ack(self, now: float) -> list:
        self._dupack_count += 1
        if self._frto_state:
            # A duplicate ACK after an RTO means the timeout was genuine
            # (RFC 5682); continue with conventional recovery.
            self._frto_state = 0
            self._frto_saved = None
        if self._dupack_count >= self.config.dupack_threshold and not self._in_recovery:
            return self._enter_fast_recovery(now)
        return []

    def _enter_fast_recovery(self, now: float) -> list:
        self._in_recovery = True
        self._recovery_point = self._snd_nxt
        self.algorithm.on_loss_event(self.state, now)
        self.state.clamp()
        segments = [self._build_segment(self._snd_una, now, retransmission=True)]
        self._arm_timer(now)
        return segments

    def _on_new_ack(self, ack_packets: int, now: float) -> list:
        newly_acked = ack_packets - self._snd_una
        rtt_sample = self._rtt_sample_for(ack_packets - 1, now)
        self._register_rtt(rtt_sample, now)
        previous_una = self._snd_una
        self._snd_una = ack_packets
        self._dupack_count = 0
        self._prune_acked(previous_una, ack_packets)

        segments: list = []
        if self._in_recovery and self._snd_una >= self._recovery_point:
            self._in_recovery = False

        frto_segments, suppress_growth = self._handle_frto(now)
        segments.extend(frto_segments)

        if not suppress_growth:
            self._grow_window(newly_acked, rtt_sample, now)
        self._apply_quirk_caps()
        self._maybe_complete_round(rtt_sample, now)
        self.state.clamp()

        segments.extend(self._transmit_new_data(now))
        if self.config.use_cwnd_moderation:
            self._moderate_cwnd()
        if self._snd_una >= self._round_end:
            self._round_end = self._snd_nxt
        if self._snd_una < self._snd_nxt or self._snd_nxt < self.total_packets:
            self._arm_timer(now)
        else:
            self._timer_deadline = None
        return segments

    def _handle_frto(self, now: float) -> tuple[list, bool]:
        """Advance the F-RTO state machine; returns (segments, suppress_growth)."""
        if not self._frto_state:
            return [], False
        if self._frto_state == 1:
            # First new ACK after the RTO: tentatively send new data rather
            # than continuing go-back-N, and wait for a second ACK.
            self._frto_state = 2
            return self._transmit_new_data(now, limit=2), True
        # Second new ACK: the timeout was spurious; undo the window collapse.
        self._frto_state = 0
        if self._frto_saved is not None:
            saved_cwnd, saved_ssthresh = self._frto_saved
            self.state.cwnd = saved_cwnd
            self.state.ssthresh = saved_ssthresh
            self._frto_saved = None
        self._spurious_timeouts += 1
        return [], True

    def _grow_window(self, newly_acked: int, rtt_sample: float | None, now: float) -> None:
        ctx = AckContext(now=now, rtt_sample=rtt_sample, newly_acked_packets=newly_acked)
        if self.config.freeze_in_avoidance and not self.state.in_slow_start():
            return
        if self.config.post_timeout_stall and self._had_timeout:
            self.state.cwnd = MIN_CWND
            return
        if self.state.in_slow_start():
            if self._round_start_time is not None and hasattr(self.slow_start_policy, "on_round_start") \
                    and self.state.acked_in_round == 0:
                self.slow_start_policy.on_round_start(self.state, now)
            before = self.state.cwnd
            self.algorithm.on_ack_slow_start(self.state, ctx)
            if type(self.algorithm).on_ack_slow_start is CongestionAvoidance.on_ack_slow_start:
                # Default algorithms delegate to the configured slow start policy;
                # undo the base-class growth and apply the policy instead.
                self.state.cwnd = before
                self.slow_start_policy.on_ack(self.state, now, rtt_sample)
            # Never overshoot ssthresh by more than the acked amount.
            if math.isfinite(self.state.ssthresh):
                self.state.cwnd = min(self.state.cwnd,
                                      max(self.state.ssthresh, before))
        else:
            self.algorithm.on_ack_avoidance(self.state, ctx)
        self.state.acked_in_round += max(newly_acked, 1)

    def _apply_quirk_caps(self) -> None:
        ceiling = self.config.approach_ceiling
        if ceiling is not None and self.state.cwnd > 0:
            # The window only ever closes a fraction of its distance to the
            # ceiling, producing the "Approaching w_timeout" trace shape.
            gap = ceiling - self.state.cwnd
            if gap < ceiling * 0.5:
                self.state.cwnd = min(self.state.cwnd,
                                      ceiling - max(gap, 0.0) * (1.0 - self.config.approach_gain))

    def _maybe_complete_round(self, rtt_sample: float | None, now: float) -> None:
        if self._snd_una < self._round_end or self._round_end == 0:
            return
        self.state.last_round_rtt = rtt_sample or self.state.latest_rtt
        ctx = AckContext(now=now, rtt_sample=rtt_sample, newly_acked_packets=0,
                         round_completed=True)
        if not self.state.in_slow_start():
            self.state.avoidance_rounds += 1
        # Delay-based algorithms sample the path once per round even during
        # slow start (e.g. Westwood's bandwidth filter, Vegas' early exit).
        if not self.config.freeze_in_avoidance and not (
                self.config.post_timeout_stall and self._had_timeout):
            self.algorithm.on_round_complete(self.state, ctx)
        self.state.acked_in_round = 0
        self._round_start_time = now

    def _moderate_cwnd(self) -> None:
        in_flight = self._snd_nxt - self._snd_una
        ceiling = in_flight + self.config.moderation_burst
        if self.state.cwnd > ceiling:
            self.state.cwnd = float(ceiling)

    # ------------------------------------------------------------------ RTT
    def _rtt_sample_for(self, packet_index: int, now: float) -> float | None:
        """RTT sample for the newest packet covered by an ACK (Karn's rule).

        Samples from retransmitted packets are discarded, and so are samples
        from packets originally sent before the most recent retransmission
        timeout: their acknowledgments were delayed by the silent RTO period,
        so the measurement does not reflect the path RTT.
        """
        if packet_index in self._retransmitted:
            return None
        if self._blocks_native:
            sent_at = self._sent_time(packet_index)
        else:
            sent_at = self._send_times.get(packet_index)
        if sent_at is None:
            return None
        if self._last_timeout_time is not None and sent_at < self._last_timeout_time:
            return None
        return max(now - sent_at, 1e-9)

    def _register_rtt(self, rtt_sample: float | None, now: float) -> None:
        if rtt_sample is None:
            return
        self.rto.observe(rtt_sample)
        state = self.state
        state.latest_rtt = rtt_sample
        state.srtt = self.rto.srtt
        state.min_rtt = min(state.min_rtt, rtt_sample)
        state.max_rtt = max(state.max_rtt, rtt_sample)

    # ------------------------------------------------------------------ send
    def effective_window(self) -> float:
        """Window actually usable for transmission, in packets.

        Returns:
            The congestion window clamped by the receive window, the send
            buffer, and the post-timeout-stall quirk.
        """
        window = self.state.cwnd
        rwnd_packets = self.config.receive_window_bytes / self.config.mss
        window = min(window, rwnd_packets)
        if self.config.send_buffer_packets is not None:
            window = min(window, self.config.send_buffer_packets)
        if self.config.post_timeout_stall and self._had_timeout:
            window = min(window, 1.0)
        return window

    def _transmit_new_data(self, now: float, limit: int | None = None) -> list:
        """Transmit everything the window allows, as one emission record.

        Closed form of the historic one-``_build_segment``-per-iteration
        loop: the window, the data bound and the optional budget are all
        constant while it runs, so the stopping index is computed directly
        and the stretch is emitted in a single :meth:`_emit_range` call.
        """
        start = self._snd_nxt
        stop = self._snd_una + int(self.effective_window())
        total = self.total_packets
        if stop > total:
            stop = total
        if limit is not None and stop > start + limit:
            stop = start + limit
        if stop <= start:
            return []
        emitted = self._emit_range(start, stop, now)
        self._snd_nxt = stop
        return emitted

    def _build_segment(self, packet_index: int, now: float, *,
                       retransmission: bool = False):
        """Emit a single (usually retransmitted) packet in the native shape."""
        mss = self.config.mss
        seq = packet_index * mss
        length = min(mss, max(self._total_bytes - seq, 0)) or mss
        if retransmission:
            self._retransmitted.add(packet_index)
        if self._blocks_native:
            self._record_single(packet_index, now)
            self.block_records += 1
            return SegmentBlock(start_index=packet_index,
                                stop_index=packet_index + 1, mss=mss,
                                sent_at=now, last_length=length,
                                is_retransmission=retransmission)
        self._send_times[packet_index] = now
        self.segment_objects += 1
        return Segment(seq=seq, length=length, sent_at=now,
                       packet_index=packet_index, is_retransmission=retransmission)

    # --------------------------------------------------------------- timeout
    def _arm_timer(self, now: float) -> None:
        self._timer_deadline = now + self.rto.current_rto()

    def on_timer(self, now: float) -> list[Segment]:
        """Fire the retransmission timer if it has expired.

        Args:
            now: Current simulation time.

        Returns:
            The retransmitted segments (empty if the timer has not
            expired or the server never retransmits).
        """
        return self._expand(self.on_timer_native(now))

    def on_timer_native(self, now: float) -> list:
        """:meth:`on_timer`, returning the native emission.

        Args:
            now: Current simulation time.

        Returns:
            The native emission records of the retransmission, if any.
        """
        if self._timer_deadline is None or now < self._timer_deadline:
            return []
        if not self.config.responds_to_timeout:
            # Quirk: the server never retransmits (invalid-trace cause).
            self._timer_deadline = None
            return []
        return self._retransmission_timeout(now)

    def _retransmission_timeout(self, now: float) -> list:
        cwnd_before = self.state.cwnd
        if self.config.use_frto:
            self._frto_saved = (self.state.cwnd, self.state.ssthresh)
            self._frto_state = 1
        self.algorithm.on_timeout(self.state, now)
        self.state.clamp()
        self.rto.back_off()
        self._had_timeout = True
        self._last_timeout_time = now
        self._in_recovery = False
        self._dupack_count = 0
        self._finished_timeouts.append(TimeoutEvent(
            at=now, cwnd_before=cwnd_before, ssthresh_after=self.state.ssthresh))
        # Go-back-N: retransmit the first unacknowledged packet.
        segments = []
        if self._snd_una < self._snd_nxt:
            segments.append(self._build_segment(self._snd_una, now, retransmission=True))
        self._round_end = self._snd_nxt
        self._round_start_time = now
        self._arm_timer(now)
        return segments

    # ------------------------------------------------------------- inspection
    def snapshot(self) -> dict[str, float]:
        """Small diagnostic snapshot used by examples and tests.

        Returns:
            The current cwnd, ssthresh, ACK point, send point and RTT
            estimates as a plain dict.
        """
        return {
            "cwnd": self.state.cwnd,
            "ssthresh": self.state.ssthresh,
            "snd_una": float(self._snd_una),
            "snd_nxt": float(self._snd_nxt),
            "min_rtt": self.state.min_rtt,
            "srtt": self.state.srtt if self.state.srtt is not None else float("nan"),
        }
