"""TCP Westwood+ (Casetti, Gerla, Mascolo, Sanadidi, Wang, MobiCom 2001).

Westwood+ grows its window exactly like RENO but replaces the blind halving
with a bandwidth-estimate-based backoff: after a loss or timeout the slow
start threshold is set to the estimated bandwidth-delay product,
``ssthresh = BWE * RTT_min / MSS``. The bandwidth estimate is a low-pass
filtered sample of the data acknowledged per RTT.

The long silent period of CAAI's emulated timeout starves the estimator: no
ACKs arrive for several seconds, the filter receives idle (zero-bandwidth)
samples, and the post-timeout ssthresh collapses to a handful of packets. The
window therefore never gets anywhere near the pre-timeout window within the 18
recorded RTTs, which is exactly the Fig. 3(m) behaviour that makes CAAI assign
``beta = 0`` to Westwood+ (Section V-B).
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class WestwoodPlus(CongestionAvoidance):
    """TCP Westwood+ congestion avoidance with bandwidth-estimate backoff."""

    name = "westwood"
    label = "WESTWOOD+"
    delay_based = True
    #: The idle-gap detector reads the evolving ``srtt`` on every ACK, so the
    #: batched engine must keep per-ACK interleaving of RTT registration and
    #: growth (the base-class default, made explicit here).
    batch_decoupled = False

    #: Low-pass filter coefficient for the bandwidth estimate (Linux: 7/8).
    filter_gain = 7.0 / 8.0
    #: Idle gap (multiples of the smoothed RTT) after which the estimator
    #: inserts zero-bandwidth samples, as the Linux implementation does when
    #: no ACKs arrive for more than one RTT.
    idle_rtt_threshold = 1.0

    def __init__(self) -> None:
        self._bandwidth_estimate = 0.0   # packets per second
        self._acked_this_round = 0.0
        self._round_start_time: float | None = None
        self._last_sample_time: float | None = None

    def on_connection_start(self, state: CongestionState) -> None:
        self._bandwidth_estimate = 0.0
        self._acked_this_round = 0.0
        self._round_start_time = None
        self._last_sample_time = None

    # -- bandwidth sampling --------------------------------------------------
    def _record_ack(self, state: CongestionState, ctx: AckContext) -> None:
        if self._round_start_time is None:
            self._round_start_time = ctx.now
        self._acked_this_round += ctx.newly_acked_packets
        self._maybe_insert_idle_samples(state, ctx.now)
        self._last_sample_time = ctx.now

    def _maybe_insert_idle_samples(self, state: CongestionState, now: float) -> None:
        """Decay the estimate across long silent gaps (Linux idle handling)."""
        if self._last_sample_time is None:
            return
        rtt = state.srtt or state.latest_rtt
        if rtt is None or rtt <= 0:
            return
        gap = now - self._last_sample_time
        idle_rounds = int(gap / (self.idle_rtt_threshold * rtt))
        for _ in range(min(idle_rounds, 64)):
            self._bandwidth_estimate *= self.filter_gain

    def _complete_round(self, state: CongestionState, now: float) -> None:
        if self._round_start_time is None:
            return
        duration = max(now - self._round_start_time, 1e-9)
        rtt = state.last_round_rtt or state.latest_rtt or duration
        sample = self._acked_this_round / max(rtt, duration)
        self._bandwidth_estimate = (self.filter_gain * self._bandwidth_estimate
                                    + (1.0 - self.filter_gain) * sample)
        self._acked_this_round = 0.0
        self._round_start_time = now

    # -- window growth -----------------------------------------------------
    def on_ack_slow_start(self, state: CongestionState, ctx: AckContext) -> None:
        self._record_ack(state, ctx)
        state.cwnd += 1.0

    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        self._record_ack(state, ctx)
        state.cwnd += 1.0 / max(state.cwnd, 1.0)

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        self._complete_round(state, ctx.now)

    # -- congestion events ---------------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        if not math.isfinite(state.min_rtt) or self._bandwidth_estimate <= 0:
            return state.cwnd / 2.0
        bdp = self._bandwidth_estimate * state.min_rtt
        return max(bdp, 2.0)

    def on_timeout(self, state: CongestionState, now: float) -> None:
        # Account for the silent RTO period before computing the new ssthresh.
        self._maybe_insert_idle_samples(state, now)
        self._last_sample_time = now
        super().on_timeout(state, now)
        self._acked_this_round = 0.0
        self._round_start_time = None

    @property
    def bandwidth_estimate(self) -> float:
        """Filtered bandwidth estimate in packets per second."""
        return self._bandwidth_estimate
