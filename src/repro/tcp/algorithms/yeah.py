"""YeAH-TCP (Baiocchi, Castellani, Vacirca, PFLDNET 2007).

YeAH ("Yet Another Highspeed TCP") switches between a *fast* mode, in which it
grows like Scalable TCP, and a *slow* mode, in which it behaves like RENO,
based on the estimated queue backlog. Its decongestion on loss removes the
estimated queue but never less than one eighth of the window, so with an empty
queue the multiplicative decrease parameter is 7/8. Parameters follow the
Linux implementation (``tcp_yeah.c``).
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState
from repro.tcp.algorithms.scalable import ScalableTcp


class Yeah(CongestionAvoidance):
    """YeAH-TCP congestion avoidance."""

    name = "yeah"
    label = "YEAH"
    delay_based = True
    batch_decoupled = True

    #: Maximum tolerated queue backlog in packets (Linux alpha = 80).
    max_queue = 80.0
    #: RTT inflation ratio threshold (Linux phy: rtt > base * (1 + 1/8)).
    rtt_inflation = 1.0 + 1.0 / 8.0
    #: Window reduction divisor in fast mode (Linux delta = 3 -> cwnd / 8).
    delta_shift = 3
    #: Number of RENO-mode rounds after which YeAH behaves fully like RENO.
    rho = 16
    #: Queue drain fraction applied during precautionary decongestion.
    epsilon_shift = 1

    def __init__(self) -> None:
        self._scalable = ScalableTcp()
        self._fast_mode = True
        self._reno_rounds = 0
        self._last_queue = 0.0

    def on_connection_start(self, state: CongestionState) -> None:
        self._fast_mode = True
        self._reno_rounds = 0
        self._last_queue = 0.0

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        if self._fast_mode:
            self._scalable.on_ack_avoidance(state, ctx)
        else:
            state.cwnd += 1.0 / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # The mode flag only flips at round boundaries, so the whole run uses
        # one growth rule.
        if self._fast_mode:
            return self._scalable.on_ack_avoidance_batch(state, ctx, count)
        cwnd = state.cwnd
        for _ in range(count):
            cwnd += 1.0 / max(cwnd, 1.0)
        state.cwnd = cwnd
        return count, None

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        rtt = state.last_round_rtt or state.latest_rtt
        base_rtt = state.min_rtt
        if rtt is None or rtt <= 0 or not math.isfinite(base_rtt):
            return
        queue = state.cwnd * (rtt - base_rtt) / rtt
        self._last_queue = max(queue, 0.0)
        if state.in_slow_start():
            return
        congested = queue > self.max_queue or rtt > base_rtt * self.rtt_inflation
        if congested:
            self._fast_mode = False
            self._reno_rounds += 1
            # Precautionary decongestion: drain part of the estimated queue.
            if queue > self.max_queue:
                state.cwnd = max(state.cwnd - queue / (2 ** self.epsilon_shift),
                                 state.ssthresh if math.isfinite(state.ssthresh) else 2.0,
                                 2.0)
        else:
            self._fast_mode = True
            self._reno_rounds = 0

    # -- multiplicative decrease --------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        if self._reno_rounds < self.rho:
            reduction = max(self._last_queue, state.cwnd / (2 ** self.delta_shift))
        else:
            reduction = max(state.cwnd / 2.0, 2.0)
        return max(state.cwnd - reduction, 2.0)

    @property
    def in_fast_mode(self) -> bool:
        return self._fast_mode
