"""Congestion avoidance algorithm implementations.

One module per algorithm family. Every class here follows the published
description of the algorithm (and, where the paper's testbed used a specific
kernel version, the behaviour of that version), because the features CAAI
extracts -- the multiplicative decrease parameter and the early
congestion-avoidance growth -- are direct consequences of those update rules.
"""

from repro.tcp.algorithms.bbr import Bbr
from repro.tcp.algorithms.bic import Bic
from repro.tcp.algorithms.ctcp import CompoundTcp, CtcpA, CtcpB
from repro.tcp.algorithms.cubic import Cubic, CubicA, CubicB
from repro.tcp.algorithms.dctcp import Dctcp
from repro.tcp.algorithms.hstcp import HighSpeedTcp
from repro.tcp.algorithms.htcp import HTcp
from repro.tcp.algorithms.hybla import Hybla
from repro.tcp.algorithms.illinois import Illinois
from repro.tcp.algorithms.learned import (
    LearnedAction,
    LearnedCc,
    LearnedPolicy,
    LearnedPolicyError,
    Observation,
    TableDrivenPolicy,
)
from repro.tcp.algorithms.lp import LowPriorityTcp
from repro.tcp.algorithms.reno import Reno
from repro.tcp.algorithms.scalable import ScalableTcp
from repro.tcp.algorithms.vegas import Vegas
from repro.tcp.algorithms.veno import Veno
from repro.tcp.algorithms.westwood import WestwoodPlus
from repro.tcp.algorithms.yeah import Yeah

__all__ = [
    "Bbr",
    "Bic",
    "CompoundTcp",
    "CtcpA",
    "CtcpB",
    "Cubic",
    "CubicA",
    "CubicB",
    "Dctcp",
    "HighSpeedTcp",
    "HTcp",
    "Hybla",
    "Illinois",
    "LearnedAction",
    "LearnedCc",
    "LearnedPolicy",
    "LearnedPolicyError",
    "LowPriorityTcp",
    "Observation",
    "Reno",
    "ScalableTcp",
    "TableDrivenPolicy",
    "Vegas",
    "Veno",
    "WestwoodPlus",
    "Yeah",
]
