"""Pluggable learned congestion control (the ``cc=``-dispatch pattern of the
net-rl simulators, e.g. Aurora, applied to the CAAI substrate).

A learned policy sees a small observation vector once per RTT round and
returns an action that rescales and/or shifts the congestion window::

    observation -> LearnedPolicy.act -> LearnedAction(cwnd_scale, cwnd_delta)

The substrate stays deterministic and bit-reproducible: the policy is called
at round boundaries only (the per-ACK hooks are no-ops, like VEGAS), the
reference :class:`TableDrivenPolicy` is a pure function of the observation,
and malformed actions raise :class:`LearnedPolicyError` loudly instead of
silently corrupting the window.

Custom policies plug in two ways:

* wrap a policy in :class:`LearnedCc` directly (``LearnedCc(policy=...)``),
  e.g. for experiments that evaluate a trained controller; or
* subclass :class:`LearnedCc` with a new ``name`` and register the class via
  :func:`repro.tcp.registry.register_algorithm`, which makes the family
  available to training sets, populations and the census by name.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState

#: Bounds on one round's window rescale; outside means a buggy policy.
MIN_CWND_SCALE = 0.1
MAX_CWND_SCALE = 10.0
#: Bound on one round's additive window shift (packets).
MAX_CWND_DELTA = 64.0


class LearnedPolicyError(ValueError):
    """A learned policy returned an unusable action (hook misuse)."""


@dataclass(frozen=True)
class Observation:
    """What a learned policy sees at the end of one RTT round.

    All quantities are in packets and seconds, straight from the sender's
    :class:`~repro.tcp.base.CongestionState`; ``queueing_delay`` is the RTT
    inflation over the connection minimum.
    """

    cwnd: float
    ssthresh: float
    round_rtt: float
    min_rtt: float
    queueing_delay: float
    avoidance_rounds: int
    in_slow_start: bool

    def as_tuple(self) -> tuple[float, ...]:
        """The observation as a flat numeric vector (for array policies)."""
        return (self.cwnd, self.ssthresh, self.round_rtt, self.min_rtt,
                self.queueing_delay, float(self.avoidance_rounds),
                1.0 if self.in_slow_start else 0.0)


@dataclass(frozen=True)
class LearnedAction:
    """One round's window adjustment: ``cwnd <- cwnd * scale + delta``."""

    cwnd_scale: float = 1.0
    cwnd_delta: float = 0.0


@runtime_checkable
class LearnedPolicy(Protocol):
    """Observation vector in, window action out -- once per RTT round."""

    def act(self, observation: Observation) -> LearnedAction:
        """Map one round's observation to the next window adjustment."""
        ...  # pragma: no cover - protocol definition


class TableDrivenPolicy:
    """Deterministic reference policy: a delay-bucket lookup table.

    Buckets the round's queueing delay (as a fraction of the minimum RTT)
    and applies a fixed action per bucket -- AIAD with a multiplicative
    backoff under heavy queueing. Purely functional, so the same trace in
    produces the same trace out on every engine tier and backend.
    """

    #: ``(upper bound on queueing_delay / min_rtt, action)`` rows; the first
    #: row whose bound exceeds the observed ratio applies.
    TABLE: tuple[tuple[float, LearnedAction], ...] = (
        (0.05, LearnedAction(cwnd_delta=2.0)),
        (0.15, LearnedAction(cwnd_delta=1.0)),
        (0.30, LearnedAction()),
        (math.inf, LearnedAction(cwnd_scale=0.85)),
    )

    def act(self, observation: Observation) -> LearnedAction:
        if observation.min_rtt > 0 and math.isfinite(observation.min_rtt):
            ratio = observation.queueing_delay / observation.min_rtt
        else:
            ratio = 0.0
        for bound, action in self.TABLE:
            if ratio < bound:
                return action
        return LearnedAction()  # pragma: no cover - inf bound always matches


class LearnedCc(CongestionAvoidance):
    """Congestion avoidance driven by a pluggable learned policy."""

    name = "learned"
    label = "LEARNED-CC"
    delay_based = True
    batch_decoupled = True

    #: Multiplicative decrease on loss/timeout (policies control the window
    #: between congestion events; the event response stays RENO's halving so
    #: recovery is well-defined whatever the policy does).
    loss_beta = 0.5

    def __init__(self, policy: LearnedPolicy | None = None) -> None:
        self.policy = policy if policy is not None else TableDrivenPolicy()
        if not callable(getattr(self.policy, "act", None)):
            raise LearnedPolicyError(
                f"learned policy {self.policy!r} has no callable act() "
                f"method; implement the LearnedPolicy protocol")

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        # The policy acts once per RTT round (in on_round_complete); the
        # per-ACK hook does nothing, exactly like VEGAS.
        return

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # A run of no-ops is a no-op; the window trivially stays monotone.
        return count, None

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        rtt = state.last_round_rtt or state.latest_rtt
        if rtt is None or rtt <= 0:
            return
        if state.in_slow_start():
            # Standard slow start finds the boundary RTT; the policy takes
            # over once congestion avoidance begins.
            return
        observation = Observation(
            cwnd=state.cwnd,
            ssthresh=state.ssthresh,
            round_rtt=rtt,
            min_rtt=state.min_rtt,
            queueing_delay=state.queueing_delay(),
            avoidance_rounds=state.avoidance_rounds,
            in_slow_start=False,
        )
        action = self.policy.act(observation)
        self._apply(state, action)

    def _apply(self, state: CongestionState, action: LearnedAction) -> None:
        if not isinstance(action, LearnedAction):
            raise LearnedPolicyError(
                f"policy {type(self.policy).__name__} returned "
                f"{action!r}; expected a LearnedAction")
        scale, delta = action.cwnd_scale, action.cwnd_delta
        if not (math.isfinite(scale) and math.isfinite(delta)):
            raise LearnedPolicyError(
                f"policy {type(self.policy).__name__} returned a non-finite "
                f"action (scale={scale}, delta={delta})")
        if not MIN_CWND_SCALE <= scale <= MAX_CWND_SCALE:
            raise LearnedPolicyError(
                f"policy {type(self.policy).__name__} returned cwnd_scale="
                f"{scale}, outside [{MIN_CWND_SCALE}, {MAX_CWND_SCALE}]")
        if abs(delta) > MAX_CWND_DELTA:
            raise LearnedPolicyError(
                f"policy {type(self.policy).__name__} returned cwnd_delta="
                f"{delta}, outside [-{MAX_CWND_DELTA}, {MAX_CWND_DELTA}]")
        state.cwnd = max(2.0, state.cwnd * scale + delta)
        # A shrinking action must not bounce the sender back into slow
        # start: the policy owns the window during congestion avoidance.
        state.ssthresh = min(state.ssthresh, state.cwnd)

    # -- multiplicative decrease -------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        return state.cwnd * self.loss_beta
