"""H-TCP (Shorten & Leith, PFLDNet 2004).

H-TCP scales its additive increase with the time elapsed since the last
congestion event: for the first second it behaves like RENO, after which the
per-RTT increase grows quadratically with the elapsed time. Its multiplicative
decrease adapts to the ratio of the minimum and maximum RTT, bounded between
0.5 and 0.8 -- the property the paper's environment B is designed to expose
(Section III-B).
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class HTcp(CongestionAvoidance):
    """H-TCP congestion avoidance."""

    name = "htcp"
    label = "HTCP"
    delay_based = False
    batch_decoupled = True

    #: Low-speed regime duration after a congestion event (seconds).
    delta_l = 1.0
    #: Bounds on the adaptive multiplicative decrease parameter.
    beta_min = 0.5
    beta_max = 0.8
    #: Whether the increase is additionally scaled by 2 * (1 - beta), the
    #: "adaptive backoff" coupling described in the H-TCP paper.
    adaptive_backoff_scaling = True

    def __init__(self) -> None:
        self._beta = self.beta_min

    def on_connection_start(self, state: CongestionState) -> None:
        self._beta = self.beta_min

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        alpha = self.increase_factor(state, ctx.now)
        state.cwnd += alpha / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # The increase factor depends only on the (constant within a run)
        # time since the last congestion event and the current beta.
        alpha = self.increase_factor(state, ctx.now)
        cwnd = state.cwnd
        for _ in range(count):
            cwnd += alpha / max(cwnd, 1.0)
        state.cwnd = cwnd
        return count, None

    def increase_factor(self, state: CongestionState, now: float) -> float:
        """Packets added per RTT, as a function of time since last congestion."""
        delta = self.time_since_congestion(state, now)
        if delta <= self.delta_l:
            alpha = 1.0
        else:
            excess = delta - self.delta_l
            alpha = 1.0 + 10.0 * excess + (excess / 2.0) ** 2
        if self.adaptive_backoff_scaling:
            alpha = max(alpha * 2.0 * (1.0 - self._beta), 1.0)
        return alpha

    # -- multiplicative decrease --------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        self._beta = self._adaptive_beta(state)
        return state.cwnd * self._beta

    def _adaptive_beta(self, state: CongestionState) -> float:
        if not math.isfinite(state.min_rtt) or state.max_rtt <= 0:
            return self.beta_min
        ratio = state.min_rtt / state.max_rtt
        return min(max(ratio, self.beta_min), self.beta_max)

    @property
    def current_beta(self) -> float:
        return self._beta
