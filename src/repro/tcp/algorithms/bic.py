"""BIC: Binary Increase Congestion control (Xu, Harfoush, Rhee, INFOCOM 2004).

BIC performs a binary search between the window at the last loss (``w_last_max``)
and the current window, capped by a maximum increment, and probes beyond
``w_last_max`` with a slow-start-like "max probing" phase. The multiplicative
decrease is 819/1024 (about 0.8) for large windows and 0.5 below the
``low_window`` threshold, exactly the behaviour the paper quotes in
Section III-B. Parameter values follow the Linux implementation
(``tcp_bic.c``), which is what the paper's testbed ran.
"""

from __future__ import annotations

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class Bic(CongestionAvoidance):
    """Linux-flavoured BIC congestion avoidance."""

    name = "bic"
    label = "BIC"
    delay_based = False
    batch_decoupled = True

    #: Below this window BIC behaves like RENO (Linux default 14).
    low_window = 14.0
    #: Multiplicative decrease factor for large windows (819/1024).
    beta = 819.0 / 1024.0
    #: Maximum window increment per RTT during additive increase / max probing.
    max_increment = 16.0
    #: Binary search divisor (Linux BICTCP_B).
    search_divisor = 4.0
    #: Smoothing factor applied close to w_last_max (Linux default 20).
    smooth_part = 20.0
    #: Whether to apply fast convergence when losses repeat below w_last_max.
    fast_convergence = True

    def __init__(self) -> None:
        self._w_last_max = 0.0

    def on_connection_start(self, state: CongestionState) -> None:
        self._w_last_max = 0.0

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        cwnd = state.cwnd
        count = self._increase_interval(cwnd)
        state.cwnd += 1.0 / count

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # w_last_max only changes on congestion events, so the per-ACK
        # interval function sees the same inputs the scalar hook would.
        cwnd = state.cwnd
        interval = self._increase_interval
        for _ in range(count):
            cwnd += 1.0 / interval(cwnd)
        state.cwnd = cwnd
        return count, None

    def _increase_interval(self, cwnd: float) -> float:
        """Number of ACKs required to grow the window by one packet."""
        if cwnd <= self.low_window:
            return cwnd
        if self._w_last_max <= 0 or cwnd >= self._w_last_max:
            return self._max_probing_interval(cwnd)
        # Binary search phase: jump half-way to w_last_max, capped.
        distance = (self._w_last_max - cwnd) / self.search_divisor
        if distance > self.max_increment:
            return cwnd / self.max_increment
        if distance <= 1.0:
            return cwnd * self.smooth_part / self.search_divisor
        return cwnd / distance

    def _max_probing_interval(self, cwnd: float) -> float:
        """Growth schedule above w_last_max (slow start away from the plateau)."""
        w_max = self._w_last_max
        if w_max <= 0:
            # No loss seen yet: behave like additive increase with the cap.
            return cwnd / self.max_increment
        if cwnd < w_max + self.search_divisor:
            return cwnd * self.smooth_part / self.search_divisor
        if cwnd < w_max + self.max_increment * (self.search_divisor - 1.0):
            return cwnd * (self.search_divisor - 1.0) / (cwnd - w_max)
        return cwnd / self.max_increment

    # -- multiplicative decrease --------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        cwnd = state.cwnd
        self._update_w_last_max(cwnd)
        if cwnd <= self.low_window:
            return cwnd / 2.0
        return cwnd * self.beta

    def _update_w_last_max(self, cwnd: float) -> None:
        if self.fast_convergence and cwnd < self._w_last_max:
            self._w_last_max = cwnd * (1.0 + self.beta) / 2.0
        else:
            self._w_last_max = cwnd

    @property
    def w_last_max(self) -> float:
        """Expose the binary-search target for tests and example tooling."""
        return self._w_last_max
