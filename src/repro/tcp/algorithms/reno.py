"""RENO: the traditional AIMD congestion avoidance algorithm.

Following the paper's terminology, "RENO" refers to the congestion avoidance
component shared by Reno, NewReno and SACK (Jacobson 1988, RFC 5681): additive
increase of one packet per RTT and multiplicative decrease of one half.
"""

from __future__ import annotations

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class Reno(CongestionAvoidance):
    """Standard additive-increase multiplicative-decrease congestion avoidance."""

    name = "reno"
    label = "RENO"
    delay_based = False
    batch_decoupled = True

    #: Multiplicative decrease parameter (the paper's beta for RENO is 0.5).
    beta = 0.5

    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        # One packet per congestion window's worth of ACKs, i.e. one per RTT.
        state.cwnd += 1.0 / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        cwnd = state.cwnd
        for _ in range(count):
            cwnd += 1.0 / max(cwnd, 1.0)
        state.cwnd = cwnd
        return count, None

    def ssthresh_after_loss(self, state: CongestionState) -> float:
        return state.cwnd * self.beta
