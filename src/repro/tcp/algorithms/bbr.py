"""BBR version 1 (Cardwell et al., "BBR: Congestion-Based Congestion
Control", ACM Queue 2016), mapped onto the round-driven probe model.

BBR is rate-based: it estimates the bottleneck bandwidth (windowed maximum
of delivery-rate samples) and the round-trip propagation delay (windowed
minimum RTT) and paces at ``pacing_gain x BtlBw``, cycling the gain through
a probe/drain pattern. The emulated CAAI environments have no bottleneck --
the window *is* the per-round send rate -- so pacing maps naturally onto the
round model: once per RTT round the state machine sets the next round's
congestion window to ``pacing_gain x BtlBw x RTprop`` (the paced amount of
data one round emits). The 2 x BDP cwnd cap of the real implementation only
guards against ACK aggregation, which the per-packet-ACK environments never
produce, so the pacing target alone drives the window.

State machine (BBRv1):

* STARTUP doubles every round (the ``2/ln 2`` pacing gain rounds to the
  standard slow-start doubling at window granularity) until the bandwidth
  filter plateaus -- three consecutive rounds growing less than 25 %.
* DRAIN drops the window to ``1 x BDP`` for one round to empty the queue
  startup built.
* PROBE-BW cycles the pacing gain through ``1.25, 0.75, 1, 1, 1, 1, 1, 1``.
  Against the uncapped emulated environments the 1.25 probe raises the
  bandwidth *maximum* filter each cycle, so the window ratchets up ~25 % per
  8 rounds -- which is what eventually trips CAAI's emulated timeout.
* PROBE-RTT collapses the window to four packets for one round whenever the
  min-RTT estimate has not been refreshed for ten rounds, then re-arms the
  filter and returns to PROBE-BW.

The trace signature is unlike any of the paper's 14 loss-based families:
``ssthresh_after_loss`` returns the *current* window (beta = 1.0 -- BBRv1
ignores packet loss), so after the emulated timeout the window climbs
straight back to the pre-timeout level, and congestion avoidance shows the
gain-cycle oscillation instead of a growth function.
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState

#: BBRv1 phase names (exposed for the state-machine tests).
STARTUP = "startup"
DRAIN = "drain"
PROBE_BW = "probe-bw"
PROBE_RTT = "probe-rtt"


class Bbr(CongestionAvoidance):
    """BBRv1 rate/cwnd-gain state machine on the round-driven model."""

    name = "bbr"
    label = "BBR v1"
    delay_based = True
    batch_decoupled = True

    #: PROBE-BW pacing-gain cycle (RFC draft-cardwell-iccrg-bbr-congestion-control).
    PACING_GAIN_CYCLE: tuple[float, ...] = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    #: Window (in rounds) of the max-bandwidth filter.
    BW_FILTER_ROUNDS = 10
    #: Startup exits once the filtered bandwidth grew less than this factor
    #: for :attr:`STARTUP_PLATEAU_ROUNDS` consecutive rounds.
    STARTUP_GROWTH_FACTOR = 1.25
    STARTUP_PLATEAU_ROUNDS = 3
    #: Rounds without a min-RTT refresh before PROBE-RTT is entered.
    MIN_RTT_EXPIRY_ROUNDS = 10
    #: Window held during PROBE-RTT, and the floor of every pacing target.
    PROBE_RTT_CWND = 4.0
    #: Rounds spent at the PROBE-RTT floor before returning to PROBE-BW.
    PROBE_RTT_ROUNDS = 1

    def __init__(self) -> None:
        self._reset_model()

    # -- lifecycle ---------------------------------------------------------
    def on_connection_start(self, state: CongestionState) -> None:
        self._reset_model()

    def _reset_model(self) -> None:
        self.phase = STARTUP
        self._round = 0
        #: Windowed delivery-rate samples as ``(round, packets_per_second)``.
        self._bw_samples: list[tuple[int, float]] = []
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._min_rtt = math.inf
        self._min_rtt_round = 0
        self._cycle_index = 0
        self._probe_rtt_until = 0

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        # BBR adjusts its window once per RTT round (in on_round_complete);
        # the per-ACK hook does nothing, exactly like Vegas.
        return

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # A run of no-ops is a no-op; the window trivially stays monotone.
        return count, None

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        rtt = state.last_round_rtt or state.latest_rtt
        if rtt is None or rtt <= 0:
            return
        self._round += 1
        self._observe(state, rtt)
        if self.phase == STARTUP:
            self._startup_round(state)
        elif self.phase == DRAIN:
            self._enter_probe_bw(state)
        elif self.phase == PROBE_RTT:
            self._probe_rtt_round(state)
        else:
            self._probe_bw_round(state)

    # -- model filters -----------------------------------------------------
    def _observe(self, state: CongestionState, rtt: float) -> None:
        """Feed one round into the bandwidth and min-RTT filters.

        The delivery rate of a clean round is the whole window acknowledged
        over one RTT; deriving it from ``cwnd`` (identical on every engine
        tier by the substrate's central invariant) rather than per-ACK
        accounting keeps the model bit-identical across tiers.
        """
        self._bw_samples.append((self._round, state.cwnd / rtt))
        cutoff = self._round - self.BW_FILTER_ROUNDS
        self._bw_samples = [(r, bw) for r, bw in self._bw_samples if r > cutoff]
        if rtt <= self._min_rtt:
            self._min_rtt = rtt
            self._min_rtt_round = self._round
        max_bw = self._max_bw()
        if max_bw >= self.STARTUP_GROWTH_FACTOR * self._full_bw:
            self._full_bw = max_bw
            self._full_bw_rounds = 0
        else:
            self._full_bw_rounds += 1

    def _max_bw(self) -> float:
        return max((bw for _, bw in self._bw_samples), default=0.0)

    def _bdp(self, state: CongestionState) -> float:
        """Estimated bandwidth-delay product in packets."""
        max_bw = self._max_bw()
        if max_bw <= 0.0 or not math.isfinite(self._min_rtt):
            return state.cwnd
        return max_bw * self._min_rtt

    def _pipe_full(self) -> bool:
        return (self._full_bw > 0.0
                and self._full_bw_rounds >= self.STARTUP_PLATEAU_ROUNDS)

    # -- phase behaviour ---------------------------------------------------
    def _startup_round(self, state: CongestionState) -> None:
        # Stay in startup while the sender's slow start keeps doubling and
        # the bandwidth filter keeps growing; either signal ends it.
        if state.in_slow_start() and not self._pipe_full():
            return
        self.phase = DRAIN
        self._set_window(state, self._bdp(state))

    def _probe_rtt_round(self, state: CongestionState) -> None:
        if self._round >= self._probe_rtt_until:
            # The floor round finished: the round's RTT sample refreshed the
            # propagation estimate, so re-arm the expiry clock.
            self._min_rtt_round = self._round
            self._enter_probe_bw(state)
            return
        self._set_window(state, self.PROBE_RTT_CWND)

    def _probe_bw_round(self, state: CongestionState) -> None:
        if self._round - self._min_rtt_round > self.MIN_RTT_EXPIRY_ROUNDS:
            self.phase = PROBE_RTT
            self._probe_rtt_until = self._round + self.PROBE_RTT_ROUNDS
            self._set_window(state, self.PROBE_RTT_CWND)
            return
        self._cycle_index = (self._cycle_index + 1) % len(self.PACING_GAIN_CYCLE)
        gain = self.PACING_GAIN_CYCLE[self._cycle_index]
        self._set_window(state, gain * self._bdp(state))

    def _enter_probe_bw(self, state: CongestionState) -> None:
        self.phase = PROBE_BW
        self._cycle_index = 0
        self._set_window(state, self.PACING_GAIN_CYCLE[0] * self._bdp(state))

    def _set_window(self, state: CongestionState, target: float) -> None:
        state.cwnd = max(self.PROBE_RTT_CWND, target)
        # Pin ssthresh at (or below) the window so the sender keeps routing
        # ACKs through the no-op avoidance hooks: the model owns the window.
        state.ssthresh = min(state.ssthresh, state.cwnd)

    # -- congestion events -------------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        # BBRv1 does not react to packet loss (beta = 1.0): the paper's
        # multiplicative-decrease feature reads ~1.0 for a BBR server.
        return state.cwnd

    def on_timeout(self, state: CongestionState, now: float) -> None:
        # RFC-style collapse to one packet (the sender must go back to
        # square one to retransmit), but ssthresh stays at the pre-timeout
        # window, so the post-timeout slow start climbs straight back.
        super().on_timeout(state, now)
        # Re-enter startup; the bandwidth filter keeps its (windowed) history
        # so DRAIN/PROBE-BW re-engage near the pre-timeout operating point.
        self.phase = STARTUP
        self._full_bw = 0.0
        self._full_bw_rounds = 0
