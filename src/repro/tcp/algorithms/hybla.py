"""TCP Hybla (Caini & Firrincieli, 2004).

Hybla compensates long-RTT (satellite) paths by scaling the growth of both
slow start and congestion avoidance with ``rho = RTT / RTT0``, where ``RTT0``
is a 25 ms reference. The paper lists Hybla in Table I but excludes it from
identification because it targets satellite links rather than Web servers; it
is implemented here so the substrate covers the full Table I catalogue.
"""

from __future__ import annotations

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class Hybla(CongestionAvoidance):
    """TCP Hybla congestion avoidance."""

    name = "hybla"
    label = "HYBLA"
    delay_based = False
    batch_decoupled = True

    #: Reference round-trip time in seconds.
    reference_rtt = 0.025
    #: Multiplicative decrease parameter (Hybla keeps RENO's halving).
    beta = 0.5
    #: Cap on rho to avoid pathological growth with the 1 s emulated RTT.
    max_rho = 16.0

    def _rho(self, state: CongestionState) -> float:
        rtt = state.latest_rtt or state.srtt
        if rtt is None or rtt <= 0:
            return 1.0
        return min(max(rtt / self.reference_rtt, 1.0), self.max_rho)

    def on_ack_slow_start(self, state: CongestionState, ctx: AckContext) -> None:
        rho = self._rho(state)
        state.cwnd += 2.0 ** rho - 1.0

    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        rho = self._rho(state)
        state.cwnd += (rho ** 2) / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        rho_squared = self._rho(state) ** 2
        cwnd = state.cwnd
        for _ in range(count):
            cwnd += rho_squared / max(cwnd, 1.0)
        state.cwnd = cwnd
        return count, None

    def ssthresh_after_loss(self, state: CongestionState) -> float:
        return state.cwnd * self.beta
