"""CUBIC: the cubic window growth function (Ha, Rhee, Xu, 2008).

CUBIC replaces BIC's binary search with an explicit cubic function of the time
elapsed since the last congestion event:

    W(t) = C * (t - K)^3 + W_max,     K = cbrt(W_max * (1 - beta) / C)

The paper distinguishes two deployed versions (Section III-A):

* ``CUBIC-a`` -- Linux kernels up to 2.6.25 ("CUBIC 2.0"): multiplicative
  decrease 819/1024 (about 0.8) and a TCP-friendliness window computed per
  ACK with the original constants.
* ``CUBIC-b`` -- Linux kernels 2.6.26 and later ("CUBIC 2.1+"): multiplicative
  decrease 717/1024 (0.7) and the reworked TCP-friendliness estimate.

Both share the cubic growth core implemented here.
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class Cubic(CongestionAvoidance):
    """Common CUBIC machinery; concrete versions set ``beta``."""

    name = "cubic"
    label = "CUBIC"
    delay_based = False
    batch_decoupled = True

    #: Cubic scaling constant C (packets / second^3).
    scaling_constant = 0.4
    #: Multiplicative decrease factor; overridden by the concrete versions.
    beta = 717.0 / 1024.0
    #: Whether the TCP-friendly region (grow at least as fast as RENO) is used.
    tcp_friendliness = True
    #: Whether to apply fast convergence when losses repeat below w_last_max.
    fast_convergence = True

    def __init__(self) -> None:
        self._w_last_max = 0.0
        self._epoch_start: float | None = None
        self._origin_point = 0.0
        self._k = 0.0
        self._tcp_cwnd = 0.0
        self._ack_count = 0.0

    def on_connection_start(self, state: CongestionState) -> None:
        self._w_last_max = 0.0
        self._reset_epoch()

    def _reset_epoch(self) -> None:
        self._epoch_start = None
        self._origin_point = 0.0
        self._k = 0.0
        self._tcp_cwnd = 0.0
        self._ack_count = 0.0

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        rtt = state.latest_rtt or state.srtt or 0.1
        target = self._cubic_target(state, ctx.now, rtt)
        if self.tcp_friendliness:
            target = max(target, self._tcp_friendly_window(state))
        if target > state.cwnd:
            # Spread the growth towards the target over the next RTT.
            state.cwnd += (target - state.cwnd) / max(state.cwnd, 1.0)
        else:
            # Far beyond the target: grow extremely slowly (Linux: cwnd/100 ACKs).
            state.cwnd += 1.0 / (100.0 * max(state.cwnd, 1.0))

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # Within a clean run ``now`` and the RTT view are constant, so the
        # cubic target is one fixed value; only the TCP-friendliness estimate
        # and the window itself evolve per ACK. The loop replays the exact
        # scalar operation sequence with those two hoisted to locals.
        rtt = state.latest_rtt or state.srtt or 0.1
        now = ctx.now
        if self._epoch_start is None:
            self._start_epoch(state, now)
        t = now - self._epoch_start + rtt
        target = self.scaling_constant * (t - self._k) ** 3 + self._origin_point
        friendly = self.tcp_friendliness
        friendly_rtt = state.latest_rtt or state.srtt
        friendly_valid = friendly_rtt is not None and friendly_rtt > 0
        aimd_rate = 3.0 * (1.0 - self.beta) / (1.0 + self.beta)
        cwnd = state.cwnd
        ack_count = self._ack_count
        tcp_cwnd = self._tcp_cwnd
        for _ in range(count):
            ack_count += 1.0
            goal = target
            if friendly:
                if friendly_valid:
                    tcp_cwnd += aimd_rate * (ack_count / max(cwnd, 1.0))
                    ack_count = 0.0
                    if tcp_cwnd > goal:
                        goal = tcp_cwnd
                elif goal < 0.0:
                    # _tcp_friendly_window returned 0.0; max(target, 0.0).
                    goal = 0.0
            if goal > cwnd:
                cwnd += (goal - cwnd) / max(cwnd, 1.0)
            else:
                cwnd += 1.0 / (100.0 * max(cwnd, 1.0))
        state.cwnd = cwnd
        self._ack_count = ack_count
        self._tcp_cwnd = tcp_cwnd
        return count, None

    def _start_epoch(self, state: CongestionState, now: float) -> None:
        """Open a cubic epoch (shared by the scalar and batch growth paths)."""
        self._epoch_start = now
        self._ack_count = 0.0
        self._tcp_cwnd = state.cwnd
        if state.cwnd < self._w_last_max:
            self._k = ((self._w_last_max - state.cwnd)
                       / self.scaling_constant) ** (1.0 / 3.0)
            self._origin_point = self._w_last_max
        else:
            self._k = 0.0
            self._origin_point = state.cwnd

    def _cubic_target(self, state: CongestionState, now: float, rtt: float) -> float:
        if self._epoch_start is None:
            self._start_epoch(state, now)
        self._ack_count += 1.0
        t = now - self._epoch_start + rtt
        return self.scaling_constant * (t - self._k) ** 3 + self._origin_point

    def _tcp_friendly_window(self, state: CongestionState) -> float:
        """Window an AIMD flow with the same beta would have reached."""
        rtt = state.latest_rtt or state.srtt
        if rtt is None or rtt <= 0:
            return 0.0
        # Estimate derived in the CUBIC paper: per RTT the equivalent AIMD flow
        # grows by 3 * (1 - beta) / (1 + beta) packets.
        aimd_rate = 3.0 * (1.0 - self.beta) / (1.0 + self.beta)
        self._tcp_cwnd += aimd_rate * (self._ack_count / max(state.cwnd, 1.0))
        self._ack_count = 0.0
        return self._tcp_cwnd

    # -- congestion events ---------------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        cwnd = state.cwnd
        if self.fast_convergence and cwnd < self._w_last_max:
            self._w_last_max = cwnd * (1.0 + self.beta) / 2.0
        else:
            self._w_last_max = cwnd
        self._reset_epoch()
        return max(cwnd * self.beta, 2.0)

    def on_timeout(self, state: CongestionState, now: float) -> None:
        super().on_timeout(state, now)
        # The cubic epoch restarts when congestion avoidance resumes.
        self._reset_epoch()

    @property
    def w_last_max(self) -> float:
        return self._w_last_max

    @property
    def k(self) -> float:
        """Time (seconds) from epoch start to the plateau at w_last_max."""
        return self._k


class CubicA(Cubic):
    """CUBIC as shipped in Linux kernels up to and including 2.6.25."""

    name = "cubic-a"
    label = "CUBIC-a (Linux <= 2.6.25)"
    beta = 819.0 / 1024.0


class CubicB(Cubic):
    """CUBIC as shipped in Linux kernels 2.6.26 and later."""

    name = "cubic-b"
    label = "CUBIC-b (Linux >= 2.6.26)"
    beta = 717.0 / 1024.0
