"""TCP Vegas (Brakmo, O'Malley, Peterson, SIGCOMM 1994).

Vegas is purely delay-based in congestion avoidance: once per RTT it compares
the expected throughput (window / base RTT) with the actual throughput
(window / current RTT) and adjusts the window by at most one packet so the
estimated backlog stays between ``alpha`` and ``beta`` packets.

In CAAI's environment A the emulated RTT never exceeds the base RTT, so Vegas
grows linearly like RENO; in environment B the RTT step from 0.8 s to 1.0 s is
interpreted as queueing and Vegas refuses to grow, which is why its window
never reaches 64 packets there -- the behaviour behind the ``reach64``
feature-vector element (Section V-D).
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class Vegas(CongestionAvoidance):
    """TCP Vegas congestion avoidance."""

    name = "vegas"
    label = "VEGAS"
    delay_based = True
    batch_decoupled = True

    #: Lower and upper backlog thresholds in packets (Linux defaults 2 and 4).
    alpha = 2.0
    beta = 4.0
    #: Slow start exit threshold: leave slow start once the backlog exceeds
    #: ``gamma`` packets (Linux default 1). This is what keeps Vegas' window
    #: tiny in environment B, where the RTT step looks like queueing.
    gamma = 1.0
    #: Multiplicative decrease on loss (Vegas falls back to RENO's halving).
    loss_beta = 0.5

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        # Vegas adjusts its window once per RTT (in on_round_complete), so the
        # per-ACK hook does nothing.
        return

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # A run of no-ops is a no-op; the window trivially stays monotone.
        return count, None

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        rtt = state.last_round_rtt or state.latest_rtt
        base_rtt = state.min_rtt
        if rtt is None or rtt <= 0 or not math.isfinite(base_rtt):
            return
        backlog = state.cwnd * (rtt - base_rtt) / rtt
        if state.in_slow_start():
            # Linux Vegas: too much backlog during slow start forces an early
            # exit by pulling ssthresh down to the current window.
            if backlog > self.gamma:
                state.ssthresh = min(state.ssthresh, state.cwnd)
            return
        if backlog < self.alpha:
            state.cwnd += 1.0
        elif backlog > self.beta:
            state.cwnd = max(state.cwnd - 1.0, 2.0)

    # -- multiplicative decrease --------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        return state.cwnd * self.loss_beta
