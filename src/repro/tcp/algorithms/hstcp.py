"""HighSpeed TCP (Floyd, RFC 3649).

HSTCP modifies RENO only for large windows: both the additive increase
``a(w)`` and the multiplicative decrease ``b(w)`` become functions of the
current window. Below ``low_window`` (38 packets) the behaviour is exactly
RENO; at the reference window of 83000 packets the decrease factor falls to
0.1, i.e. the paper's ``beta = 1 - b(w)`` ranges between 0.5 and 0.9
(Section III-B).
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class HighSpeedTcp(CongestionAvoidance):
    """RFC 3649 HighSpeed TCP response function."""

    name = "hstcp"
    label = "HSTCP"
    delay_based = False
    batch_decoupled = True

    #: Window below which HSTCP behaves exactly like RENO.
    low_window = 38.0
    #: Reference large window and its target decrease parameter.
    high_window = 83_000.0
    high_decrease = 0.1
    #: Packet drop rate at the reference large window (RFC 3649, Section 5).
    high_p = 1e-7

    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        increase = self.additive_increase(state.cwnd)
        state.cwnd += increase / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        cwnd = state.cwnd
        additive = self.additive_increase
        for _ in range(count):
            cwnd += additive(cwnd) / max(cwnd, 1.0)
        state.cwnd = cwnd
        return count, None

    def ssthresh_after_loss(self, state: CongestionState) -> float:
        b = self.decrease_parameter(state.cwnd)
        return state.cwnd * (1.0 - b)

    # -- HSTCP response function --------------------------------------------
    def decrease_parameter(self, cwnd: float) -> float:
        """RFC 3649 b(w): 0.5 at low_window decaying to 0.1 at high_window."""
        if cwnd <= self.low_window:
            return 0.5
        if cwnd >= self.high_window:
            return self.high_decrease
        log_ratio = (math.log(cwnd) - math.log(self.low_window)) / (
            math.log(self.high_window) - math.log(self.low_window))
        return 0.5 + (self.high_decrease - 0.5) * log_ratio

    def additive_increase(self, cwnd: float) -> float:
        """RFC 3649 a(w): packets added per RTT at window ``cwnd``."""
        if cwnd <= self.low_window:
            return 1.0
        b = self.decrease_parameter(cwnd)
        p = self.drop_rate(cwnd)
        return (cwnd ** 2) * p * 2.0 * b / (2.0 - b)

    def drop_rate(self, cwnd: float) -> float:
        """The HSTCP response function's implied drop rate at window ``cwnd``."""
        if cwnd <= self.low_window:
            # RENO's response function: p = 1.5 / w^2.
            return 1.5 / (cwnd ** 2)
        low_p = 1.5 / (self.low_window ** 2)
        log_ratio = (math.log(cwnd) - math.log(self.low_window)) / (
            math.log(self.high_window) - math.log(self.low_window))
        log_p = math.log(low_p) + log_ratio * (math.log(self.high_p) - math.log(low_p))
        return math.exp(log_p)
