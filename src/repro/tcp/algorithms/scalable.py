"""Scalable TCP (Kelly, CCR 2003).

STCP uses a multiplicative-increase multiplicative-decrease rule: each ACK
adds a constant 0.01 packets (so the per-RTT growth is proportional to the
window, i.e. exponential), and a loss multiplies the window by 0.875. These
are the constants the paper quotes for STCP in Section III-B.
"""

from __future__ import annotations

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class ScalableTcp(CongestionAvoidance):
    """Scalable TCP congestion avoidance."""

    name = "stcp"
    label = "STCP"
    delay_based = False
    batch_decoupled = True

    #: Packets added per received ACK during congestion avoidance.
    increase_per_ack = 0.01
    #: Multiplicative decrease parameter (1 - 1/8).
    beta = 0.875
    #: Below this window STCP behaves like RENO (Linux low_window = 16).
    low_window = 16.0

    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        if state.cwnd < self.low_window:
            state.cwnd += 1.0 / max(state.cwnd, 1.0)
        else:
            state.cwnd += self.increase_per_ack

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        cwnd = state.cwnd
        low_window = self.low_window
        increase = self.increase_per_ack
        for _ in range(count):
            if cwnd < low_window:
                cwnd += 1.0 / max(cwnd, 1.0)
            else:
                cwnd += increase
        state.cwnd = cwnd
        return count, None

    def ssthresh_after_loss(self, state: CongestionState) -> float:
        if state.cwnd < self.low_window:
            return state.cwnd / 2.0
        return state.cwnd * self.beta
