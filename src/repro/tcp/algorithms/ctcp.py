"""Compound TCP (Tan, Song, Zhang, Sridharan, INFOCOM 2006).

Compound TCP (CTCP) adds a delay-based window ``dwnd`` on top of the standard
loss-based AIMD window; the sending window is their sum. While the network is
uncongested (the estimated backlog ``diff`` stays below ``gamma`` packets) the
delay window grows polynomially, ``dwnd += alpha * win^k - 1``; once queueing
is detected it shrinks multiplicatively.

The paper distinguishes two deployed versions (Section III-A):

* ``CTCP-a`` -- Windows Server 2003 / XP (the original implementation).
* ``CTCP-b`` -- Windows Server 2008 / Vista / 7 (the revised implementation).

Microsoft never published the internals of either version; the paper
identifies them purely by their observable traces (Fig. 3(c)/(d)), noting that
the later version's post-timeout growth reacts to an RTT change while the
earlier one's does not. We therefore reconstruct the difference as follows and
record it in DESIGN.md: CTCP-a discards its delay window on a timeout and
rebuilds it from scratch with the fixed original gain, while CTCP-b retains a
bounded delay window across timeouts and normalises its gain by the measured
RTT (the documented "gamma auto-tuning" refinement), which makes its growth
rate RTT-dependent.
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class CompoundTcp(CongestionAvoidance):
    """Base Compound TCP: loss window plus delay window."""

    name = "ctcp"
    label = "CTCP"
    delay_based = True
    batch_decoupled = True

    #: Threshold (packets of backlog) below which the path is deemed uncongested.
    gamma = 30.0
    #: Delay window growth gain and exponent (alpha * win^k).
    alpha = 0.125
    k = 0.75
    #: Multiplicative shrink factor applied to dwnd when backlog is detected.
    zeta = 1.0
    #: Loss-window multiplicative decrease (the AIMD component halves).
    loss_beta = 0.5
    #: CTCP only engages its delay window above this window size; below it the
    #: behaviour is indistinguishable from RENO (the property behind the
    #: paper's RC-small merge).
    low_window = 41.0
    #: Whether dwnd survives a retransmission timeout.
    dwnd_survives_timeout = False
    #: Whether the delay-window gain is normalised by the measured RTT.
    rtt_normalised_gain = False
    #: Reference RTT used for normalisation (seconds).
    reference_rtt = 0.1

    def __init__(self) -> None:
        self._dwnd = 0.0
        self._loss_cwnd = 0.0

    def on_connection_start(self, state: CongestionState) -> None:
        self._dwnd = 0.0
        self._loss_cwnd = state.cwnd

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        # The loss-based component always performs the RENO additive increase.
        state.cwnd += 1.0 / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # The delay window moves once per round; per ACK only the loss-based
        # RENO increase runs.
        cwnd = state.cwnd
        for _ in range(count):
            cwnd += 1.0 / max(cwnd, 1.0)
        state.cwnd = cwnd
        return count, None

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        """Update the delay window once per RTT round (congestion avoidance only)."""
        if state.in_slow_start():
            return
        if state.cwnd < self.low_window:
            self._retire_dwnd(state)
            return
        rtt = state.last_round_rtt or state.latest_rtt
        base_rtt = state.min_rtt
        if rtt is None or not math.isfinite(base_rtt) or rtt <= 0:
            return
        win = state.cwnd
        expected = win / base_rtt
        actual = win / rtt
        diff = (expected - actual) * base_rtt
        previous_dwnd = self._dwnd
        if diff < self.gamma:
            gain = self.alpha
            if self.rtt_normalised_gain:
                gain = self.alpha * min(4.0, max(0.25, rtt / self.reference_rtt) ** 0.5)
            self._dwnd += max(gain * win ** self.k - 1.0, 0.0)
        else:
            self._dwnd = max(self._dwnd - self.zeta * diff, 0.0)
        # The compound window is the sum of the loss window (which lives in
        # ``cwnd`` and grows via the RENO per-ACK increase) and the delay
        # window; apply the change of the delay component on top.
        state.cwnd = max(state.cwnd + (self._dwnd - previous_dwnd), 2.0)

    def _retire_dwnd(self, state: CongestionState) -> None:
        """Remove any remaining delay window when dropping below ``low_window``."""
        if self._dwnd > 0.0:
            state.cwnd = max(state.cwnd - self._dwnd, 2.0)
            self._dwnd = 0.0

    # -- congestion events ---------------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        # On loss the compound window collapses to half, the same observable
        # multiplicative decrease as RENO (CTCP is designed to be RENO-friendly).
        return state.cwnd * self.loss_beta

    def on_timeout(self, state: CongestionState, now: float) -> None:
        super().on_timeout(state, now)
        if self.dwnd_survives_timeout:
            self._dwnd = min(self._dwnd, state.ssthresh / 2.0)
        else:
            self._dwnd = 0.0

    @property
    def dwnd(self) -> float:
        """Current delay-based window component (packets)."""
        return self._dwnd


class CtcpA(CompoundTcp):
    """Compound TCP as shipped with Windows Server 2003 and XP."""

    name = "ctcp-a"
    label = "CTCP-a (Windows Server 2003 / XP)"
    dwnd_survives_timeout = False
    rtt_normalised_gain = False


class CtcpB(CompoundTcp):
    """Compound TCP as shipped with Windows Server 2008, Vista and 7."""

    name = "ctcp-b"
    label = "CTCP-b (Windows Server 2008 / Vista / 7)"
    dwnd_survives_timeout = True
    rtt_normalised_gain = True
