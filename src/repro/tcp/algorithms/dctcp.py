"""DCTCP (Alizadeh et al., SIGCOMM 2010) -- ECN-fraction proportional decrease.

DCTCP keeps an EWMA ``alpha`` of the fraction of packets that carried an ECN
congestion-experienced mark in each window of data::

    alpha <- (1 - g) * alpha + g * F        (g = 1/16)

and, in a window that saw at least one mark, shrinks the congestion window
proportionally to the *extent* of congestion instead of halving::

    cwnd <- cwnd * (1 - alpha / 2)

The window growth between marks is RENO's additive increase, so the vector
kernel of the columnar engine is the same reciprocal-step kernel RENO uses.

ECN marks reach the algorithm through the sender's
:meth:`~repro.tcp.connection.TcpSender.ecn_feedback` path, which only the
ECN-enabled link knob feeds (``NetemLink.ecn_mark_probability`` /
``NetworkCondition.ecn_mark_rate``, both default-off). Without any marks
``alpha`` stays at its conservative initial value of 1.0, so
``ssthresh_after_loss`` degrades to RENO's halving and the CAAI trace is
indistinguishable from RENO -- the honest consequence of probing a DCTCP
server through a non-ECN path, and the reason the columnar kernel stays
exact for every mark-free probe.
"""

from __future__ import annotations

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState

#: Floor on the window after a proportional reduction (RFC 8257 keeps two
#: packets in flight so the mark feedback loop never stalls).
MIN_REDUCED_CWND = 2.0


class Dctcp(CongestionAvoidance):
    """DCTCP: RENO growth plus ECN-fraction proportional decrease."""

    name = "dctcp"
    label = "DCTCP"
    delay_based = False
    batch_decoupled = True

    #: EWMA gain of the mark-fraction estimator (RFC 8257's ``g`` = 1/16).
    GAIN = 1.0 / 16.0
    #: Initial ``alpha``: RFC 8257 recommends 1.0 so a freshly started
    #: connection reacts conservatively (RENO's halving) until it has
    #: observed real mark fractions.
    INITIAL_ALPHA = 1.0

    def __init__(self) -> None:
        self.alpha = self.INITIAL_ALPHA
        self._marked = 0
        self._acked = 0

    # -- lifecycle ---------------------------------------------------------
    def on_connection_start(self, state: CongestionState) -> None:
        self.alpha = self.INITIAL_ALPHA
        self._marked = 0
        self._acked = 0

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        # One packet per congestion window's worth of ACKs, exactly RENO.
        state.cwnd += 1.0 / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # Bit-identical to RENO's batch hook: same floating-point sequence,
        # monotone growth, so no cwnd log is needed.
        cwnd = state.cwnd
        for _ in range(count):
            cwnd += 1.0 / max(cwnd, 1.0)
        state.cwnd = cwnd
        return count, None

    # -- ECN feedback ------------------------------------------------------
    def on_ecn_feedback(self, state: CongestionState, marked: int,
                        acked: int) -> None:
        """Accumulate one batch of receiver mark feedback.

        Called by the sender whenever the receiver reports how many of the
        ``acked`` packets it saw carried a congestion-experienced mark; the
        counts are folded into ``alpha`` at the next round boundary.
        """
        self._marked += marked
        self._acked += acked

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        if self._acked <= 0:
            # No ECN feedback this round (in particular: the default,
            # ECN-free links) -- alpha and the window are left untouched, so
            # the trace stays bit-identical to RENO's.
            return
        fraction = self._marked / self._acked
        self.alpha = (1.0 - self.GAIN) * self.alpha + self.GAIN * fraction
        if self._marked > 0 and not state.in_slow_start():
            state.cwnd = max(MIN_REDUCED_CWND,
                             state.cwnd * (1.0 - self.alpha / 2.0))
            # Keep the sender in congestion avoidance after the reduction:
            # DCTCP's cut is a rate adjustment, not a loss recovery.
            state.ssthresh = min(state.ssthresh, state.cwnd)
        elif self._marked > 0:
            # Marks during slow start end it, like a conventional ECN
            # response (RFC 3168) would.
            state.ssthresh = min(state.ssthresh, state.cwnd)
        self._marked = 0
        self._acked = 0

    # -- multiplicative decrease -------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        # Proportional to the observed congestion extent; with no marks ever
        # seen alpha is 1.0 and this is RENO's halving.
        return state.cwnd * (1.0 - self.alpha / 2.0)
