"""TCP-Illinois (Liu, Basar, Srikant, VALUETOOLS 2006).

Illinois is a loss-delay hybrid: losses still trigger a multiplicative
decrease, but the additive-increase gain ``alpha`` and the decrease factor
``beta`` are both functions of the measured queueing delay. With an empty
queue the algorithm is aggressive (alpha = 10, beta = 1/8); as queueing delay
approaches its maximum the algorithm degrades to RENO-like behaviour. The
paper uses the RTT step in environment B to expose this delay dependence
(Section IV-B).
Parameter values follow the Linux implementation (``tcp_illinois.c``).
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class Illinois(CongestionAvoidance):
    """TCP-Illinois congestion avoidance."""

    name = "illinois"
    label = "ILLINOIS"
    delay_based = True
    batch_decoupled = True

    alpha_min = 0.3
    alpha_max = 10.0
    beta_min = 0.125
    beta_max = 0.5
    #: Window below which the algorithm stays RENO-like (Linux: win_thresh 15).
    win_thresh = 15.0
    #: Queueing-delay breakpoints as fractions of the maximum observed delay.
    d1_fraction = 0.01
    d2_fraction = 0.10
    d3_fraction = 0.80
    #: Delays below this floor (seconds) are treated as measurement noise;
    #: the kernel works in whole microseconds and a sub-millisecond spread is
    #: indistinguishable from an uncongested path.
    delay_noise_floor = 0.001

    def __init__(self) -> None:
        self._alpha = 1.0
        self._beta = self.beta_max
        self._max_delay = 0.0
        self._round_delays: list[float] = []

    def on_connection_start(self, state: CongestionState) -> None:
        self._alpha = 1.0
        self._beta = self.beta_max
        self._max_delay = 0.0
        self._round_delays = []

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        if ctx.rtt_sample is not None and math.isfinite(state.min_rtt):
            self._round_delays.append(max(0.0, ctx.rtt_sample - state.min_rtt))
        state.cwnd += self._alpha / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # alpha only changes at round boundaries; the per-ACK delay sample is
        # the same constant for every ACK of a clean run.
        if ctx.rtt_sample is not None and math.isfinite(state.min_rtt):
            delay = max(0.0, ctx.rtt_sample - state.min_rtt)
            self._round_delays.extend([delay] * count)
        alpha = self._alpha
        cwnd = state.cwnd
        for _ in range(count):
            cwnd += alpha / max(cwnd, 1.0)
        state.cwnd = cwnd
        return count, None

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        # alpha and beta are refreshed every round, in slow start as well as in
        # congestion avoidance, because a loss may strike while still in slow
        # start and the backoff must reflect the delay observed so far.
        delay = self._average_round_delay(state)
        self._round_delays = []
        self._max_delay = max(self._max_delay, delay)
        if state.cwnd < self.win_thresh:
            # Below the window threshold Illinois is plain RENO (Linux base values).
            self._alpha, self._beta = 1.0, self.beta_max
            return
        self._alpha = self._compute_alpha(delay)
        self._beta = self._compute_beta(delay)

    def _average_round_delay(self, state: CongestionState) -> float:
        if self._round_delays:
            return sum(self._round_delays) / len(self._round_delays)
        return state.queueing_delay()

    def _compute_alpha(self, delay: float) -> float:
        d_m = self._max_delay
        if d_m <= self.delay_noise_floor:
            return self.alpha_max
        d1 = self.d1_fraction * d_m
        if delay <= d1:
            return self.alpha_max
        # Hyperbolic interpolation k1 / (k2 + d), continuous at d1 and d_m.
        k1 = (d_m - d1) * self.alpha_max * self.alpha_min / (self.alpha_max - self.alpha_min)
        k2 = k1 / self.alpha_max - d1
        return max(self.alpha_min, k1 / (k2 + delay))

    def _compute_beta(self, delay: float) -> float:
        d_m = self._max_delay
        if d_m <= self.delay_noise_floor:
            return self.beta_min
        d2 = self.d2_fraction * d_m
        d3 = self.d3_fraction * d_m
        if delay <= d2:
            return self.beta_min
        if delay >= d3:
            return self.beta_max
        # Linear interpolation between the two breakpoints.
        return (self.beta_min * (d3 - delay) + self.beta_max * (delay - d2)) / (d3 - d2)

    # -- multiplicative decrease --------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        return state.cwnd * (1.0 - self._beta)

    @property
    def current_alpha(self) -> float:
        return self._alpha

    @property
    def current_beta_reduction(self) -> float:
        """The reduction fraction (the paper's beta is ``1 -`` this value)."""
        return self._beta
