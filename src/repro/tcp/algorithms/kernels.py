"""Cross-session congestion-avoidance kernels for the columnar probe engine.

The segment-block engine (PR 3) already collapses a round's ACK processing to
one call per run, but the per-ACK arithmetic still executes as an interpreted
Python loop per session. The columnar engine holds the congestion windows of
a whole cohort of probe sessions as one numpy column and replays those loops
*across the session axis*: one vector operation per ACK ladder step instead
of one Python iteration per ACK per session.

Bit-exactness is the design constraint, exactly as for PRs 2-3: every kernel
performs the same IEEE-754 double operations in the same order as the
algorithm's ``on_ack_avoidance_batch`` hook, so the resulting windows are
bit-identical to the scalar engine. Elementwise numpy add / subtract /
multiply / divide / maximum on float64 are the same rounded operations as
Python float arithmetic; transcendentals are **not** (numpy's SIMD ``log`` /
``exp`` / ``power`` differ from ``math.*`` in the last ulp), so:

* CUBIC's epoch constants and per-round target (cube root, cube) are computed
  per session with scalar Python -- they are per-run constants, so this is
  O(sessions) per round, not O(ACKs);
* HSTCP's per-ACK ``additive_increase`` (two logs and an exp *per ACK*) is
  deduplicated: lock-step cohorts carry heavily duplicated window states, so
  each distinct window value is evaluated once with scalar ``math`` calls and
  scattered back (``KERNEL_HSTCP``);
* anything else falls back to calling the session's real batch hook in a
  per-session loop (``KERNEL_LOOP``), which costs exactly what the scalar
  engine costs but keeps the cohort semantics.

The registry is keyed by *exact* algorithm type: subclasses (including test
doubles) miss the lookup and the engine ejects the session to the scalar
engine, mirroring the trusted-hook gating of the batched ACK engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tcp.algorithms.bic import Bic
from repro.tcp.algorithms.ctcp import CtcpA, CtcpB
from repro.tcp.algorithms.cubic import CubicA, CubicB
from repro.tcp.algorithms.dctcp import Dctcp
from repro.tcp.algorithms.hstcp import HighSpeedTcp
from repro.tcp.algorithms.htcp import HTcp
from repro.tcp.algorithms.illinois import Illinois
from repro.tcp.algorithms.reno import Reno
from repro.tcp.algorithms.scalable import ScalableTcp
from repro.tcp.algorithms.vegas import Vegas
from repro.tcp.algorithms.veno import Veno
from repro.tcp.algorithms.yeah import Yeah
from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState

KERNEL_RECIP = "recip"
KERNEL_STCP = "stcp"
KERNEL_BIC = "bic"
KERNEL_CUBIC = "cubic"
KERNEL_HSTCP = "hstcp"
KERNEL_NOOP = "noop"
KERNEL_LOOP = "loop"


@dataclass
class RunPlan:
    """Per-session plan for one round's congestion-avoidance ACK run.

    Produced by the algorithm's ``prepare`` function once per round, after
    the slow-start portion of the run has been consumed; carries the per-run
    constants the vector kernel needs plus any per-ACK state that must be
    written back to the algorithm instance afterwards.
    """

    mode: str
    #: Numerator of the ``cwnd += num / max(cwnd, 1)`` growth (KERNEL_RECIP).
    num: float = 1.0
    #: BIC: the current ``w_last_max`` plateau.
    w_last_max: float = 0.0
    #: CUBIC per-run constants and per-ACK carries.
    target: float = 0.0
    aimd_rate: float = 0.0
    friendly_valid: bool = False
    ack_count: float = 0.0
    tcp_cwnd: float = 0.0


def _prepare_recip(algorithm, state, ctx, count):
    return RunPlan(KERNEL_RECIP, num=1.0)


def _prepare_illinois(algorithm: Illinois, state, ctx, count):
    # Mirror the batch hook's side effect: the per-ACK delay samples feed the
    # next round's alpha/beta refresh.
    import math
    if ctx.rtt_sample is not None and math.isfinite(state.min_rtt):
        delay = max(0.0, ctx.rtt_sample - state.min_rtt)
        algorithm._round_delays.extend([delay] * count)
    return RunPlan(KERNEL_RECIP, num=algorithm._alpha)


def _prepare_htcp(algorithm: HTcp, state, ctx, count):
    # The increase factor is constant within a run (it only reads the time
    # since the last congestion event); computing it once per session keeps
    # its transcendentals on the scalar path.
    return RunPlan(KERNEL_RECIP, num=algorithm.increase_factor(state, ctx.now))


def _prepare_veno(algorithm: Veno, state, ctx, count):
    if algorithm._backlog < algorithm.backlog_threshold:
        return RunPlan(KERNEL_RECIP, num=1.0)
    # Congested mode toggles growth every other ACK; rare in the emulated
    # environments, so the real hook is cheaper than a dedicated kernel.
    return RunPlan(KERNEL_LOOP)


def _prepare_yeah(algorithm: Yeah, state, ctx, count):
    if algorithm._fast_mode:
        return RunPlan(KERNEL_STCP)
    return RunPlan(KERNEL_RECIP, num=1.0)


def _prepare_stcp(algorithm, state, ctx, count):
    return RunPlan(KERNEL_STCP)


def _prepare_bic(algorithm: Bic, state, ctx, count):
    return RunPlan(KERNEL_BIC, w_last_max=algorithm._w_last_max)


def _prepare_cubic(algorithm, state, ctx, count):
    # Epoch constants involve a cube root / cube: scalar Python, per session,
    # once per round -- exactly the values the batch hook would compute.
    rtt = state.latest_rtt or state.srtt or 0.1
    now = ctx.now
    if algorithm._epoch_start is None:
        algorithm._start_epoch(state, now)
    t = now - algorithm._epoch_start + rtt
    target = (algorithm.scaling_constant * (t - algorithm._k) ** 3
              + algorithm._origin_point)
    friendly_rtt = state.latest_rtt or state.srtt
    aimd_rate = 3.0 * (1.0 - algorithm.beta) / (1.0 + algorithm.beta)
    return RunPlan(KERNEL_CUBIC, target=target, aimd_rate=aimd_rate,
                   friendly_valid=friendly_rtt is not None and friendly_rtt > 0,
                   ack_count=algorithm._ack_count, tcp_cwnd=algorithm._tcp_cwnd)


def _finish_cubic(algorithm, plan: RunPlan) -> None:
    algorithm._ack_count = plan.ack_count
    algorithm._tcp_cwnd = plan.tcp_cwnd


def _prepare_hstcp(algorithm, state, ctx, count):
    return RunPlan(KERNEL_HSTCP)


def _prepare_noop(algorithm, state, ctx, count):
    return RunPlan(KERNEL_NOOP)


#: Exact-type registry: algorithm class -> per-round plan builder. CUBIC's
#: friendliness flag is a class constant (True); the plan assumes it.
COLUMNAR_KERNELS: dict[type[CongestionAvoidance], object] = {
    Reno: _prepare_recip,
    CtcpA: _prepare_recip,
    CtcpB: _prepare_recip,
    # DCTCP grows exactly like RENO between ECN marks, and probes whose
    # condition can mark at all are ejected to the scalar engine before any
    # lane is built, so the reciprocal kernel is exact for every lane that
    # reaches it. BBR and LearnedCc are deliberately absent: their windows
    # are model/policy-driven, so their sessions always run scalar.
    Dctcp: _prepare_recip,
    Illinois: _prepare_illinois,
    HTcp: _prepare_htcp,
    Veno: _prepare_veno,
    Yeah: _prepare_yeah,
    ScalableTcp: _prepare_stcp,
    Bic: _prepare_bic,
    CubicA: _prepare_cubic,
    CubicB: _prepare_cubic,
    HighSpeedTcp: _prepare_hstcp,
    Vegas: _prepare_noop,
}


#: Below this many same-kernel sessions in a lock-step round, a vector ladder
#: step's fixed numpy dispatch cost exceeds the per-session Python loop it
#: replaces; the engine then calls the sessions' real batch hooks instead
#: (bit-identical either way -- this is purely a cost model).
NARROW_GROUP = 24

#: Types whose kernel wins at any width: Vegas's is a no-op, and HSTCP's
#: dedup replaces per-ACK transcendentals no matter how few sessions share it.
ALWAYS_KERNEL = frozenset({HighSpeedTcp, Vegas})

#: Static kernel family per exact type, for width counting *before* any
#: prepare call (prepares may touch per-round algorithm state, so the
#: narrow-group decision has to precede them). Veno and Yeah flip between
#: families on cheap, side-effect-free state reads and are special-cased in
#: :func:`kernel_family`.
KERNEL_FAMILIES: dict[type[CongestionAvoidance], str] = {
    Reno: KERNEL_RECIP,
    CtcpA: KERNEL_RECIP,
    CtcpB: KERNEL_RECIP,
    Dctcp: KERNEL_RECIP,
    Illinois: KERNEL_RECIP,
    HTcp: KERNEL_RECIP,
    ScalableTcp: KERNEL_STCP,
    Bic: KERNEL_BIC,
    CubicA: KERNEL_CUBIC,
    CubicB: KERNEL_CUBIC,
    HighSpeedTcp: KERNEL_HSTCP,
    Vegas: KERNEL_NOOP,
}


def kernel_family(algorithm: CongestionAvoidance) -> str:
    """The kernel mode this session's run will use, without side effects.

    Seven registry algorithms share the reciprocal-form kernel, so counting
    group width by family (rather than exact type) lets mixed cohorts -- a
    training build runs every algorithm at once, four lanes each -- pool into
    vector groups wide enough to beat the scalar hooks.
    """
    cls = type(algorithm)
    if cls is Veno:
        return (KERNEL_RECIP if algorithm._backlog < algorithm.backlog_threshold
                else KERNEL_LOOP)
    if cls is Yeah:
        return KERNEL_STCP if algorithm._fast_mode else KERNEL_RECIP
    return KERNEL_FAMILIES[cls]


def has_kernel(algorithm: CongestionAvoidance) -> bool:
    """True when the engine has a plan builder for this exact type."""
    return type(algorithm) in COLUMNAR_KERNELS


def prepare_run(algorithm: CongestionAvoidance, state: CongestionState,
                ctx: AckContext, count: int) -> RunPlan:
    """Build the round's :class:`RunPlan` (may touch per-round algorithm state)."""
    return COLUMNAR_KERNELS[type(algorithm)](algorithm, state, ctx, count)


# ---------------------------------------------------------------- steppers
# Each stepper advances the masked sessions by ONE congestion-avoidance ACK,
# in place, replaying the batch hook's loop body as vector operations.

_SCALABLE_LOW = ScalableTcp.low_window
_SCALABLE_INC = ScalableTcp.increase_per_ack
_BIC_LOW = Bic.low_window
_BIC_DIV = Bic.search_divisor
_BIC_MAXINC = Bic.max_increment
_BIC_SMOOTH = Bic.smooth_part


def _step_recip(cwnd: np.ndarray, num: np.ndarray) -> None:
    cwnd += num / np.maximum(cwnd, 1.0)


def _step_stcp(cwnd: np.ndarray) -> None:
    inc = np.where(cwnd < _SCALABLE_LOW,
                   1.0 / np.maximum(cwnd, 1.0), _SCALABLE_INC)
    cwnd += inc


def _step_bic(cwnd: np.ndarray, w_max: np.ndarray) -> None:
    # Branch structure of Bic._increase_interval / _max_probing_interval,
    # evaluated with the same arithmetic on every branch. Division by zero
    # cannot occur on a selected branch; np.errstate silences the unselected
    # ones.
    with np.errstate(divide="ignore", invalid="ignore"):
        probing = np.where(
            w_max <= 0,
            cwnd / _BIC_MAXINC,
            np.where(
                cwnd < w_max + _BIC_DIV,
                cwnd * _BIC_SMOOTH / _BIC_DIV,
                np.where(cwnd < w_max + _BIC_MAXINC * (_BIC_DIV - 1.0),
                         cwnd * (_BIC_DIV - 1.0) / (cwnd - w_max),
                         cwnd / _BIC_MAXINC)))
        distance = (w_max - cwnd) / _BIC_DIV
        search = np.where(distance > _BIC_MAXINC,
                          cwnd / _BIC_MAXINC,
                          np.where(distance <= 1.0,
                                   cwnd * _BIC_SMOOTH / _BIC_DIV,
                                   cwnd / distance))
        interval = np.where(
            cwnd <= _BIC_LOW, cwnd,
            np.where((w_max <= 0) | (cwnd >= w_max), probing, search))
    cwnd += 1.0 / interval


def _step_cubic_valid(cwnd: np.ndarray, target: np.ndarray, aimd: np.ndarray,
                      ack_count: np.ndarray, tcp_cwnd: np.ndarray) -> None:
    # The friendliness branch with every session's RTT valid (the common
    # case after the first round): no masks, and ``where(tcp > goal, tcp,
    # goal)`` collapses to ``maximum`` (bit-identical for non-nan inputs).
    ack_count += 1.0
    safe = np.maximum(cwnd, 1.0)
    tcp_cwnd += aimd * (ack_count / safe)
    ack_count[:] = 0.0
    goal = np.maximum(tcp_cwnd, target)
    cwnd += np.where(goal > cwnd, (goal - cwnd) / safe, 1.0 / (100.0 * safe))


def _step_cubic(cwnd: np.ndarray, target: np.ndarray, aimd: np.ndarray,
                valid: np.ndarray, ack_count: np.ndarray,
                tcp_cwnd: np.ndarray) -> None:
    ack_count += 1.0
    goal = target.copy()
    if valid.any():
        safe = np.maximum(cwnd, 1.0)
        grown = tcp_cwnd + aimd * (ack_count / safe)
        tcp_cwnd[valid] = grown[valid]
        ack_count[valid] = 0.0
        goal[valid] = np.where(tcp_cwnd[valid] > goal[valid],
                               tcp_cwnd[valid], goal[valid])
    invalid = ~valid
    if invalid.any():
        goal[invalid] = np.where(goal[invalid] < 0.0, 0.0, goal[invalid])
    safe = np.maximum(cwnd, 1.0)
    cwnd += np.where(goal > cwnd, (goal - cwnd) / safe, 1.0 / (100.0 * safe))


def _step_hstcp(cwnd: np.ndarray, additive_increase) -> None:
    # Distinct window values are evaluated once with the real (scalar,
    # transcendental) a(w); lock-step cohorts are heavily duplicated, so this
    # is the vector win numpy's last-ulp-different log/exp cannot provide.
    unique, inverse = np.unique(cwnd, return_inverse=True)
    inc = np.array([additive_increase(w) / max(w, 1.0) for w in unique.tolist()],
                   dtype=np.float64)
    cwnd += inc[inverse]


class KernelGroup:
    """All sessions of one kernel mode within one lock-step round.

    The group advances every member session through its share of the round's
    congestion-avoidance ACKs with one vector operation per ladder step. Two
    phases mirror the sender's ``_grow_run`` split: the first ``k - 1`` ACKs
    (whose final window fixes the per-ACK transmission cap) and the last ACK.
    """

    def __init__(self, mode: str, members: list) -> None:
        # members: list of (index, cwnd, steps1, steps2, RunPlan, algorithm)
        self.mode = mode
        self.members = members

    def run(self, out_km1: np.ndarray, out_fin: np.ndarray) -> None:
        """Advance the group; write the window after ``k - 1`` ACKs and after
        all ``k`` ACKs into ``out_km1`` / ``out_fin`` at each member's index.

        Members are sorted by descending first-phase step count so that the
        sessions still running at ladder step ``i`` always form a contiguous
        prefix: each vector operation runs on a slice view, never a boolean
        mask (no gather/scatter copies). Sorting is safe because every
        kernel is elementwise across sessions -- the only cross-session
        operation, HSTCP's dedup, is order-independent.
        """
        order = sorted(range(len(self.members)),
                       key=lambda i: self.members[i][2], reverse=True)
        members = [self.members[i] for i in order]
        idx = np.array([m[0] for m in members], dtype=np.intp)
        cwnd = np.array([m[1] for m in members], dtype=np.float64)
        steps1 = [m[2] for m in members]
        steps2 = [m[3] for m in members]
        plans = [m[4] for m in members]
        aux: dict[str, np.ndarray] = {}
        self._valid_only = False
        if self.mode == KERNEL_RECIP:
            aux["num"] = np.array([p.num for p in plans], dtype=np.float64)
        elif self.mode == KERNEL_BIC:
            aux["w_max"] = np.array([p.w_last_max for p in plans], dtype=np.float64)
        elif self.mode == KERNEL_CUBIC:
            aux["target"] = np.array([p.target for p in plans], dtype=np.float64)
            aux["aimd"] = np.array([p.aimd_rate for p in plans], dtype=np.float64)
            aux["valid"] = np.array([p.friendly_valid for p in plans], dtype=bool)
            aux["ack_count"] = np.array([p.ack_count for p in plans], dtype=np.float64)
            aux["tcp_cwnd"] = np.array([p.tcp_cwnd for p in plans], dtype=np.float64)
            self._valid_only = bool(aux["valid"].all())
        elif self.mode == KERNEL_HSTCP:
            aux["fn"] = members[0][5].additive_increase

        self._iterate(cwnd, steps1, aux)
        out_km1[idx] = cwnd
        self._iterate(cwnd, steps2, aux)
        out_fin[idx] = cwnd

        if self.mode == KERNEL_CUBIC:
            for offset, member in enumerate(members):
                plan = member[4]
                plan.ack_count = float(aux["ack_count"][offset])
                plan.tcp_cwnd = float(aux["tcp_cwnd"][offset])
                _finish_cubic(member[5], plan)

    def _iterate(self, cwnd: np.ndarray, steps: list,
                 aux: dict[str, np.ndarray]) -> None:
        """Advance each session by its ``steps`` count (descending order)."""
        if self.mode == KERNEL_NOOP or not steps:
            return
        active = len(steps)
        for i in range(steps[0]):
            while active and steps[active - 1] <= i:
                active -= 1
            if active == len(steps):
                self._apply(cwnd, aux, None)
            else:
                self._apply(cwnd, aux, active)

    def _apply(self, cwnd, aux, active) -> None:
        """One ladder step on the leading ``active`` sessions (None = all).

        Slice views share memory with the full columns, so in-place kernel
        updates land directly; auxiliary columns are sliced the same way.
        """
        view = cwnd if active is None else cwnd[:active]
        if self.mode == KERNEL_RECIP:
            num = aux["num"]
            _step_recip(view, num if active is None else num[:active])
        elif self.mode == KERNEL_STCP:
            _step_stcp(view)
        elif self.mode == KERNEL_BIC:
            w_max = aux["w_max"]
            _step_bic(view, w_max if active is None else w_max[:active])
        elif self.mode == KERNEL_CUBIC:
            if active is None:
                target, aimd = aux["target"], aux["aimd"]
                valid = aux["valid"]
                ack, tcp = aux["ack_count"], aux["tcp_cwnd"]
            else:
                target, aimd = aux["target"][:active], aux["aimd"][:active]
                valid = aux["valid"][:active]
                ack, tcp = aux["ack_count"][:active], aux["tcp_cwnd"][:active]
            if self._valid_only:
                _step_cubic_valid(view, target, aimd, ack, tcp)
            else:
                _step_cubic(view, target, aimd, valid, ack, tcp)
        elif self.mode == KERNEL_HSTCP:
            _step_hstcp(view, aux["fn"])
