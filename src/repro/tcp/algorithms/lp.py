"""TCP-LP: low-priority congestion control (Kuzmanovic & Knightly, INFOCOM 2003).

TCP-LP yields to regular traffic: it grows like RENO while the one-way delay
is close to its minimum, but as soon as the smoothed delay crosses a threshold
between the observed minimum and maximum it infers competing traffic and backs
off aggressively (halving, and dropping to one packet if the inference repeats
within an inference window). The paper lists TCP-LP in Table I but excludes it
from identification because it targets background transfers, not Web servers;
it is implemented for catalogue completeness.
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class LowPriorityTcp(CongestionAvoidance):
    """TCP-LP congestion avoidance."""

    name = "lp"
    label = "LP"
    delay_based = True
    batch_decoupled = True

    #: Early-congestion threshold as a fraction of the delay range.
    delay_threshold = 0.15
    #: Length of the inference phase (seconds).
    inference_window = 1.0
    #: Multiplicative decrease parameter outside the inference phase.
    beta = 0.5

    def __init__(self) -> None:
        self._smoothed_delay = 0.0
        self._last_inference_time: float | None = None
        self._within_inference = False

    def on_connection_start(self, state: CongestionState) -> None:
        self._smoothed_delay = 0.0
        self._last_inference_time = None
        self._within_inference = False

    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        self._update_delay(state, ctx)
        if self._early_congestion(state):
            self._back_off(state, ctx.now)
        else:
            self._within_inference = False
            state.cwnd += 1.0 / max(state.cwnd, 1.0)

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, list[float]]:
        """Batched TCP-LP: replays the per-ACK delay filter and backoffs.

        The backoff can *shrink* the window mid-run, so the hook returns the
        per-ACK window log for the sender's transmission bookkeeping and
        stops as soon as a backoff drops the window below ``ssthresh`` (the
        scalar engine would route the next ACK through slow start again).
        """
        log: list[float] = []
        append = log.append
        cwnd = state.cwnd
        ssthresh = state.ssthresh
        smoothed = self._smoothed_delay
        min_rtt = state.min_rtt
        max_rtt = state.max_rtt
        delay = None
        if ctx.rtt_sample is not None and math.isfinite(min_rtt):
            delay = max(0.0, ctx.rtt_sample - min_rtt)
        range_valid = math.isfinite(min_rtt) and max_rtt > min_rtt
        threshold = (self.delay_threshold * (max_rtt - min_rtt)
                     if range_valid else 0.0)
        within = self._within_inference
        last_time = self._last_inference_time
        window = self.inference_window
        now = ctx.now
        consumed = 0
        while consumed < count:
            if delay is not None:
                smoothed = 0.875 * smoothed + 0.125 * delay
            if range_valid and smoothed > threshold:
                if within and last_time is not None and now - last_time <= window:
                    cwnd = 1.0
                else:
                    cwnd = max(cwnd / 2.0, 1.0)
                    within = True
                last_time = now
                append(cwnd)
                consumed += 1
                if cwnd < ssthresh:
                    break
            else:
                within = False
                cwnd += 1.0 / max(cwnd, 1.0)
                append(cwnd)
                consumed += 1
        state.cwnd = cwnd
        self._smoothed_delay = smoothed
        self._within_inference = within
        self._last_inference_time = last_time
        return consumed, log

    def _update_delay(self, state: CongestionState, ctx: AckContext) -> None:
        if ctx.rtt_sample is None or not math.isfinite(state.min_rtt):
            return
        delay = max(0.0, ctx.rtt_sample - state.min_rtt)
        self._smoothed_delay = 0.875 * self._smoothed_delay + 0.125 * delay

    def _early_congestion(self, state: CongestionState) -> bool:
        if not math.isfinite(state.min_rtt) or state.max_rtt <= state.min_rtt:
            return False
        delay_range = state.max_rtt - state.min_rtt
        return self._smoothed_delay > self.delay_threshold * delay_range

    def _back_off(self, state: CongestionState, now: float) -> None:
        if self._within_inference and self._last_inference_time is not None \
                and now - self._last_inference_time <= self.inference_window:
            state.cwnd = 1.0
        else:
            state.cwnd = max(state.cwnd / 2.0, 1.0)
            self._within_inference = True
        self._last_inference_time = now

    def ssthresh_after_loss(self, state: CongestionState) -> float:
        return state.cwnd * self.beta
