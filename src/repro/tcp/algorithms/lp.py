"""TCP-LP: low-priority congestion control (Kuzmanovic & Knightly, INFOCOM 2003).

TCP-LP yields to regular traffic: it grows like RENO while the one-way delay
is close to its minimum, but as soon as the smoothed delay crosses a threshold
between the observed minimum and maximum it infers competing traffic and backs
off aggressively (halving, and dropping to one packet if the inference repeats
within an inference window). The paper lists TCP-LP in Table I but excludes it
from identification because it targets background transfers, not Web servers;
it is implemented for catalogue completeness.
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class LowPriorityTcp(CongestionAvoidance):
    """TCP-LP congestion avoidance."""

    name = "lp"
    label = "LP"
    delay_based = True

    #: Early-congestion threshold as a fraction of the delay range.
    delay_threshold = 0.15
    #: Length of the inference phase (seconds).
    inference_window = 1.0
    #: Multiplicative decrease parameter outside the inference phase.
    beta = 0.5

    def __init__(self) -> None:
        self._smoothed_delay = 0.0
        self._last_inference_time: float | None = None
        self._within_inference = False

    def on_connection_start(self, state: CongestionState) -> None:
        self._smoothed_delay = 0.0
        self._last_inference_time = None
        self._within_inference = False

    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        self._update_delay(state, ctx)
        if self._early_congestion(state):
            self._back_off(state, ctx.now)
        else:
            self._within_inference = False
            state.cwnd += 1.0 / max(state.cwnd, 1.0)

    def _update_delay(self, state: CongestionState, ctx: AckContext) -> None:
        if ctx.rtt_sample is None or not math.isfinite(state.min_rtt):
            return
        delay = max(0.0, ctx.rtt_sample - state.min_rtt)
        self._smoothed_delay = 0.875 * self._smoothed_delay + 0.125 * delay

    def _early_congestion(self, state: CongestionState) -> bool:
        if not math.isfinite(state.min_rtt) or state.max_rtt <= state.min_rtt:
            return False
        delay_range = state.max_rtt - state.min_rtt
        return self._smoothed_delay > self.delay_threshold * delay_range

    def _back_off(self, state: CongestionState, now: float) -> None:
        if self._within_inference and self._last_inference_time is not None \
                and now - self._last_inference_time <= self.inference_window:
            state.cwnd = 1.0
        else:
            state.cwnd = max(state.cwnd / 2.0, 1.0)
            self._within_inference = True
        self._last_inference_time = now

    def ssthresh_after_loss(self, state: CongestionState) -> float:
        return state.cwnd * self.beta
