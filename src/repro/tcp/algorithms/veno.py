"""TCP Veno (Fu & Liew, JSAC 2003).

Veno keeps RENO's structure but uses a Vegas-style backlog estimate ``N`` to
(a) slow the additive increase to every other RTT once the path looks
congested and (b) choose the multiplicative decrease: 0.8 when the loss looks
random (small backlog) and 0.5 when it looks congestive. The RTT step of
environment B changes the backlog estimate, which the paper exploits to
distinguish Veno from RENO (Section IV-B).
"""

from __future__ import annotations

import math

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState


class Veno(CongestionAvoidance):
    """TCP Veno congestion avoidance."""

    name = "veno"
    label = "VENO"
    delay_based = True
    batch_decoupled = True

    #: Backlog threshold distinguishing random from congestive loss (packets).
    backlog_threshold = 3.0
    #: Multiplicative decrease for random losses.
    random_loss_beta = 0.8
    #: Multiplicative decrease for congestive losses.
    congestive_loss_beta = 0.5

    def __init__(self) -> None:
        self._backlog = 0.0
        self._hold_growth = False

    def on_connection_start(self, state: CongestionState) -> None:
        self._backlog = 0.0
        self._hold_growth = False

    # -- window growth -----------------------------------------------------
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        if self._backlog < self.backlog_threshold:
            state.cwnd += 1.0 / max(state.cwnd, 1.0)
        else:
            # Congested path: grow half as fast (one packet every two RTTs),
            # implemented by skipping every other ACK's contribution.
            if self._hold_growth:
                self._hold_growth = False
            else:
                state.cwnd += 1.0 / max(state.cwnd, 1.0)
                self._hold_growth = True

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, None]:
        # The backlog estimate only changes at round boundaries, so the run
        # stays in one growth mode; the every-other-ACK toggle is replayed.
        cwnd = state.cwnd
        if self._backlog < self.backlog_threshold:
            for _ in range(count):
                cwnd += 1.0 / max(cwnd, 1.0)
        else:
            hold = self._hold_growth
            for _ in range(count):
                if hold:
                    hold = False
                else:
                    cwnd += 1.0 / max(cwnd, 1.0)
                    hold = True
            self._hold_growth = hold
        state.cwnd = cwnd
        return count, None

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        rtt = state.last_round_rtt or state.latest_rtt
        base_rtt = state.min_rtt
        if rtt is None or rtt <= 0 or not math.isfinite(base_rtt):
            return
        self._backlog = max(0.0, state.cwnd * (rtt - base_rtt) / rtt)

    # -- multiplicative decrease --------------------------------------------
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        if self._backlog < self.backlog_threshold:
            return state.cwnd * self.random_loss_beta
        return state.cwnd * self.congestive_loss_beta

    @property
    def backlog(self) -> float:
        return self._backlog
