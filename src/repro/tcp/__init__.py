"""TCP sender substrate.

This subpackage implements everything CAAI needs on the *server* side of a
probe: MSS-sized segments, RTO estimation, a sender state machine with slow
start / congestion avoidance / timeout recovery, and from-scratch
implementations of every congestion avoidance algorithm the paper identifies
(Table I of the paper).
"""

from repro.tcp.base import AckContext, CongestionAvoidance, CongestionState
from repro.tcp.connection import SenderConfig, TcpSender
from repro.tcp.packet import Ack, Segment
from repro.tcp.registry import (
    ALL_ALGORITHM_NAMES,
    IDENTIFIABLE_ALGORITHMS,
    algorithm_catalog,
    create_algorithm,
)
from repro.tcp.rto import RtoEstimator

__all__ = [
    "Ack",
    "AckContext",
    "ALL_ALGORITHM_NAMES",
    "CongestionAvoidance",
    "CongestionState",
    "IDENTIFIABLE_ALGORITHMS",
    "RtoEstimator",
    "Segment",
    "SenderConfig",
    "TcpSender",
    "algorithm_catalog",
    "create_algorithm",
]
