"""TCP option handling relevant to CAAI.

CAAI controls two options in its SYN (Section IV-C of the paper): the maximum
segment size, which it lowers so that large windows (in packets) are reachable
with little data, and window scaling, which it uses to advertise a one
gigabyte receive window so that the receive window never limits the server.
"""

from __future__ import annotations

from dataclasses import dataclass

#: MSS values CAAI tries, in the increasing order used by the paper
#: (Section IV-B, "Values of mss").
CAAI_MSS_LADDER: tuple[int, ...] = (100, 300, 536, 1460)

#: Receive window field value and scale used by CAAI (Section IV-B,
#: "Value of TCP Receive Window Size"): 65535 << 14 is roughly one gigabyte.
CAAI_RECEIVE_WINDOW_FIELD = 65_535
CAAI_WINDOW_SCALE = 14


def scaled_receive_window(field_value: int = CAAI_RECEIVE_WINDOW_FIELD,
                          scale: int = CAAI_WINDOW_SCALE) -> int:
    """Return the effective receive window in bytes for a scaled window field."""
    if field_value < 0:
        raise ValueError("receive window field must be non-negative")
    if not 0 <= scale <= 14:
        raise ValueError("window scale must be between 0 and 14 (RFC 7323)")
    return field_value << scale


@dataclass(frozen=True)
class SynOptions:
    """Options carried in the CAAI SYN packet."""

    mss: int
    window_scale: int = CAAI_WINDOW_SCALE
    receive_window_field: int = CAAI_RECEIVE_WINDOW_FIELD

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("MSS must be positive")

    @property
    def receive_window_bytes(self) -> int:
        return scaled_receive_window(self.receive_window_field, self.window_scale)


def negotiate_mss(requested_mss: int, server_minimum_mss: int,
                  server_maximum_mss: int = 1460) -> int | None:
    """Apply a server's MSS acceptance policy to the MSS requested by CAAI.

    The paper (Table II) observed that most Web servers accept an MSS as low
    as 100 bytes but a non-trivial fraction only accept larger values. We
    model a server by the minimum MSS it is willing to use. A request below
    that minimum is rejected (``None``), mirroring the behaviour that forces
    CAAI to climb its MSS ladder.
    """
    if requested_mss <= 0:
        raise ValueError("requested MSS must be positive")
    if requested_mss < server_minimum_mss:
        return None
    return min(requested_mss, server_maximum_mss)
