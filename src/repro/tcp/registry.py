"""Registry of congestion avoidance algorithms and the Table I catalogue.

The registry maps stable string names (used in configuration files, training
sets and census results) to algorithm classes, and records which operating
system families ship each algorithm -- the content of Table I of the paper.

Beyond the paper's 2011 catalogue the registry also carries the *modern*
families (:data:`MODERN_ALGORITHMS`: BBRv1, DCTCP, and the pluggable
learned-CC hook), which the ``modern_families`` experiment uses to ask
whether CAAI's fingerprinting survives the post-2011 Internet. They are
deliberately kept out of :data:`IDENTIFIABLE_ALGORITHMS` and the Table I
catalogue so every artifact of the paper reproduction stays byte-identical.
New families -- e.g. a custom :class:`~repro.tcp.algorithms.LearnedCc`
subclass wrapping a trained policy -- plug in via
:func:`register_algorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcp.algorithms import (
    Bbr,
    Bic,
    CtcpA,
    CtcpB,
    CubicA,
    CubicB,
    Dctcp,
    HighSpeedTcp,
    HTcp,
    Hybla,
    Illinois,
    LearnedCc,
    LowPriorityTcp,
    Reno,
    ScalableTcp,
    Vegas,
    Veno,
    WestwoodPlus,
    Yeah,
)
from repro.tcp.base import CongestionAvoidance

_ALGORITHM_CLASSES: dict[str, type[CongestionAvoidance]] = {
    cls.name: cls
    for cls in (
        Reno, Bic, CubicA, CubicB, CtcpA, CtcpB, HighSpeedTcp, HTcp,
        Illinois, ScalableTcp, Vegas, Veno, WestwoodPlus, Yeah, Hybla,
        LowPriorityTcp, Bbr, Dctcp, LearnedCc,
    )
}

#: Names of the algorithms the paper's Table I catalogues (the 2011
#: families plus the two CUBIC/CTCP version splits the paper introduces).
CLASSIC_ALGORITHM_NAMES: tuple[str, ...] = (
    "bic", "ctcp-a", "ctcp-b", "cubic-a", "cubic-b", "hstcp", "htcp",
    "hybla", "illinois", "lp", "reno", "stcp", "vegas", "veno", "westwood",
    "yeah",
)

#: The post-2011 families grown on top of the paper's catalogue.
MODERN_ALGORITHMS: tuple[str, ...] = ("bbr", "dctcp", "learned")


def _sorted_names() -> tuple[str, ...]:
    return tuple(sorted(_ALGORITHM_CLASSES))


#: Names of every implemented algorithm, classic and modern. A snapshot:
#: :func:`register_algorithm` rebinds this module attribute, so dynamic
#: consumers should read ``registry.ALL_ALGORITHM_NAMES`` (or call
#: :func:`create_algorithm`) rather than import the tuple by value.
ALL_ALGORITHM_NAMES: tuple[str, ...] = _sorted_names()

#: The 14 algorithms CAAI identifies (Section III-A), in the paper's order.
IDENTIFIABLE_ALGORITHMS: tuple[str, ...] = (
    "reno",
    "bic",
    "ctcp-a",
    "ctcp-b",
    "cubic-a",
    "cubic-b",
    "hstcp",
    "htcp",
    "illinois",
    "stcp",
    "vegas",
    "veno",
    "westwood",
    "yeah",
)

#: Algorithms listed in Table I but excluded from identification because they
#: are not designed for Web servers (HYBLA targets satellite links, LP targets
#: background transfers).
EXCLUDED_FROM_IDENTIFICATION: tuple[str, ...] = ("hybla", "lp")


def register_algorithm(cls: type[CongestionAvoidance], *,
                       replace: bool = False) -> type[CongestionAvoidance]:
    """Register a congestion avoidance class under its ``name``.

    The entry point for plugging new families into the substrate (the
    ``cc=``-dispatch pattern): once registered, the name works everywhere a
    built-in one does -- :func:`create_algorithm`, training-set builders,
    synthetic servers and populations.

    Args:
        cls: A concrete :class:`CongestionAvoidance` subclass with a
            non-default ``name`` and ``label``; ``cls()`` must construct it.
        replace: Allow overwriting an existing registration (off by default
            so two plugins cannot silently fight over a name).

    Returns:
        ``cls``, so the function doubles as a class decorator.

    Raises:
        TypeError: If ``cls`` is not a concrete CongestionAvoidance subclass.
        ValueError: If the name is missing/default, or already registered
            and ``replace`` is false.
    """
    if not (isinstance(cls, type) and issubclass(cls, CongestionAvoidance)):
        raise TypeError(f"register_algorithm needs a CongestionAvoidance "
                        f"subclass, got {cls!r}")
    name = getattr(cls, "name", None)
    if not name or name == CongestionAvoidance.name:
        raise ValueError(f"{cls.__name__} must define a non-default "
                         f"registry name (got {name!r})")
    if not replace and name in _ALGORITHM_CLASSES:
        registered = _ALGORITHM_CLASSES[name]
        raise ValueError(
            f"algorithm name {name!r} is already registered to "
            f"{registered.__name__}; pass replace=True to override")
    _ALGORITHM_CLASSES[name] = cls
    global ALL_ALGORITHM_NAMES
    ALL_ALGORITHM_NAMES = _sorted_names()
    return cls


def unregister_algorithm(name: str) -> None:
    """Remove a dynamically registered algorithm (test/plugin teardown).

    Args:
        name: The registry name to remove.

    Raises:
        ValueError: If the name is unknown (message lists valid names) or
            names one of the built-in families, which must stay registered.
    """
    cls = _lookup(name)
    if cls in _BUILTIN_CLASSES:
        raise ValueError(f"cannot unregister built-in algorithm {name!r}")
    del _ALGORITHM_CLASSES[name]
    global ALL_ALGORITHM_NAMES
    ALL_ALGORITHM_NAMES = _sorted_names()


_BUILTIN_CLASSES = frozenset(_ALGORITHM_CLASSES.values())


def _lookup(name: str) -> type[CongestionAvoidance]:
    """Resolve a registry name, raising a loud ValueError when unknown."""
    try:
        return _ALGORITHM_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(_ALGORITHM_CLASSES))
        raise ValueError(f"unknown TCP algorithm {name!r}; known: {known}") from None


def create_algorithm(name: str) -> CongestionAvoidance:
    """Instantiate a congestion avoidance algorithm by registry name."""
    return _lookup(name)()


def algorithm_class(name: str) -> type[CongestionAvoidance]:
    """The registered class for a registry name (loud ValueError if unknown)."""
    return _lookup(name)


def algorithm_label(name: str) -> str:
    """Human readable label for a registry name."""
    return _lookup(name).label


@dataclass(frozen=True)
class CatalogEntry:
    """One row of the Table I catalogue."""

    name: str
    label: str
    windows_family: bool
    linux_family: bool
    default_in: tuple[str, ...]


def algorithm_catalog() -> list[CatalogEntry]:
    """Return the Table I catalogue: availability per OS family.

    Windows ships RENO and CTCP (CTCP being the default on server editions);
    Linux ships everything else, with BIC then CUBIC as successive defaults.
    Only the paper's 2011 catalogue appears here; the modern families live
    in :data:`MODERN_ALGORITHMS` and their own experiment.
    """
    defaults = {
        "reno": ("Windows XP (client)", "older Linux kernels"),
        "ctcp-a": ("Windows Server 2003", "Windows XP (64-bit)"),
        "ctcp-b": ("Windows Server 2008", "Windows Vista", "Windows 7"),
        "bic": ("Linux 2.6.8 - 2.6.18",),
        "cubic-a": ("Linux 2.6.19 - 2.6.25",),
        "cubic-b": ("Linux 2.6.26 and later",),
    }
    windows_only = {"ctcp-a", "ctcp-b"}
    both = {"reno"}
    entries = []
    for name in CLASSIC_ALGORITHM_NAMES:
        cls = _ALGORITHM_CLASSES[name]
        entries.append(CatalogEntry(
            name=name,
            label=cls.label,
            windows_family=name in windows_only or name in both,
            linux_family=name not in windows_only,
            default_in=defaults.get(name, ()),
        ))
    return entries
