"""Registry of congestion avoidance algorithms and the Table I catalogue.

The registry maps stable string names (used in configuration files, training
sets and census results) to algorithm classes, and records which operating
system families ship each algorithm -- the content of Table I of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcp.algorithms import (
    Bic,
    CtcpA,
    CtcpB,
    CubicA,
    CubicB,
    HighSpeedTcp,
    HTcp,
    Hybla,
    Illinois,
    LowPriorityTcp,
    Reno,
    ScalableTcp,
    Vegas,
    Veno,
    WestwoodPlus,
    Yeah,
)
from repro.tcp.base import CongestionAvoidance

_ALGORITHM_CLASSES: dict[str, type[CongestionAvoidance]] = {
    cls.name: cls
    for cls in (
        Reno, Bic, CubicA, CubicB, CtcpA, CtcpB, HighSpeedTcp, HTcp,
        Illinois, ScalableTcp, Vegas, Veno, WestwoodPlus, Yeah, Hybla,
        LowPriorityTcp,
    )
}

#: Names of every implemented algorithm (the Table I catalogue plus the two
#: CUBIC/CTCP version splits the paper introduces).
ALL_ALGORITHM_NAMES: tuple[str, ...] = tuple(sorted(_ALGORITHM_CLASSES))

#: The 14 algorithms CAAI identifies (Section III-A), in the paper's order.
IDENTIFIABLE_ALGORITHMS: tuple[str, ...] = (
    "reno",
    "bic",
    "ctcp-a",
    "ctcp-b",
    "cubic-a",
    "cubic-b",
    "hstcp",
    "htcp",
    "illinois",
    "stcp",
    "vegas",
    "veno",
    "westwood",
    "yeah",
)

#: Algorithms listed in Table I but excluded from identification because they
#: are not designed for Web servers (HYBLA targets satellite links, LP targets
#: background transfers).
EXCLUDED_FROM_IDENTIFICATION: tuple[str, ...] = ("hybla", "lp")


def create_algorithm(name: str) -> CongestionAvoidance:
    """Instantiate a congestion avoidance algorithm by registry name."""
    try:
        cls = _ALGORITHM_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(_ALGORITHM_CLASSES))
        raise ValueError(f"unknown TCP algorithm {name!r}; known: {known}") from None
    return cls()


def algorithm_label(name: str) -> str:
    """Human readable label for a registry name."""
    return _ALGORITHM_CLASSES[name].label


@dataclass(frozen=True)
class CatalogEntry:
    """One row of the Table I catalogue."""

    name: str
    label: str
    windows_family: bool
    linux_family: bool
    default_in: tuple[str, ...]


def algorithm_catalog() -> list[CatalogEntry]:
    """Return the Table I catalogue: availability per OS family.

    Windows ships RENO and CTCP (CTCP being the default on server editions);
    Linux ships everything else, with BIC then CUBIC as successive defaults.
    """
    defaults = {
        "reno": ("Windows XP (client)", "older Linux kernels"),
        "ctcp-a": ("Windows Server 2003", "Windows XP (64-bit)"),
        "ctcp-b": ("Windows Server 2008", "Windows Vista", "Windows 7"),
        "bic": ("Linux 2.6.8 - 2.6.18",),
        "cubic-a": ("Linux 2.6.19 - 2.6.25",),
        "cubic-b": ("Linux 2.6.26 and later",),
    }
    windows_only = {"ctcp-a", "ctcp-b"}
    both = {"reno"}
    entries = []
    for name in ALL_ALGORITHM_NAMES:
        cls = _ALGORITHM_CLASSES[name]
        entries.append(CatalogEntry(
            name=name,
            label=cls.label,
            windows_family=name in windows_only or name in both,
            linux_family=name not in windows_only,
            default_in=defaults.get(name, ()),
        ))
    return entries
