"""Congestion avoidance algorithm interface.

The paper characterises a congestion avoidance algorithm by two features
(Section III-B): the multiplicative decrease parameter ``beta`` that sets the
slow start threshold after a loss or timeout, and the window growth function
that drives the congestion window during congestion avoidance. Every algorithm
in :mod:`repro.tcp.algorithms` implements the interface defined here; the
sender state machine in :mod:`repro.tcp.connection` calls it.

All windows are expressed in packets (MSS-sized units), matching both the
paper's notation and the granularity at which CAAI observes the server.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

#: ssthresh is never allowed below two packets (RFC 5681).
MIN_SSTHRESH = 2.0
#: cwnd is never allowed below one packet.
MIN_CWND = 1.0


@dataclass
class CongestionState:
    """Congestion-control view of a TCP connection.

    The sender owns one instance and shares it with its congestion avoidance
    algorithm. The algorithm mutates ``cwnd`` (and occasionally ``ssthresh``);
    everything else is maintained by the sender.
    """

    mss: int
    cwnd: float = 2.0
    ssthresh: float = math.inf
    #: Smallest RTT sample seen on the connection (seconds).
    min_rtt: float = math.inf
    #: Largest RTT sample seen on the connection (seconds).
    max_rtt: float = 0.0
    #: Exponentially smoothed RTT (seconds), None until the first sample.
    srtt: float | None = None
    #: Most recent RTT sample (seconds), None until the first sample.
    latest_rtt: float | None = None
    #: Congestion window just before the most recent congestion event.
    w_max: float = 0.0
    #: Time of the most recent congestion event (loss or timeout), or None.
    last_congestion_time: float | None = None
    #: Number of completed RTT rounds spent in congestion avoidance since the
    #: last congestion event.
    avoidance_rounds: int = 0
    #: Packets acknowledged during the current RTT round.
    acked_in_round: int = 0
    #: RTT measured for the most recently completed round (seconds).
    last_round_rtt: float | None = None

    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def queueing_delay(self) -> float:
        """Current estimate of queueing delay (seconds) from RTT inflation."""
        if self.latest_rtt is None or not math.isfinite(self.min_rtt):
            return 0.0
        return max(0.0, self.latest_rtt - self.min_rtt)

    def clamp(self) -> None:
        """Enforce the floors on cwnd and ssthresh after algorithm updates."""
        if self.cwnd < MIN_CWND:
            self.cwnd = MIN_CWND
        if self.ssthresh < MIN_SSTHRESH:
            self.ssthresh = MIN_SSTHRESH


@dataclass(frozen=True)
class AckContext:
    """Per-ACK information handed to the algorithm.

    Attributes:
        now: current time in seconds.
        rtt_sample: RTT measured from the segment this ACK covers, or None
            when the ACK acknowledged only retransmitted data (Karn's rule).
        newly_acked_packets: number of previously unacknowledged packets this
            cumulative ACK covers. With the per-packet ACKs CAAI sends this is
            normally one; it is larger when an earlier ACK was lost.
        round_completed: True when this ACK closes the current RTT round.
    """

    now: float
    rtt_sample: float | None
    newly_acked_packets: int
    round_completed: bool = False


class CongestionAvoidance(ABC):
    """Base class for congestion avoidance algorithms.

    Subclasses implement the congestion-avoidance window growth and the
    multiplicative decrease. Slow start is handled by the sender (the paper
    relies on the standard slow start behaviour to find the boundary RTT), but
    an algorithm may customise it by overriding :meth:`on_ack_slow_start`.
    """

    #: Registry name, e.g. ``"cubic-b"``. Set by each subclass.
    name: str = "abstract"
    #: Human readable label used in tables, e.g. ``"CUBIC (>= 2.6.26)"``.
    label: str = "abstract"
    #: True for algorithms that use delay signals (affects example tooling only).
    delay_based: bool = False
    #: Whether the batched ACK engine may register a clean run's (identical)
    #: RTT samples with the sender's RTO estimator *before* running the
    #: window growth, instead of interleaving registration and growth per
    #: ACK as the scalar engine does. Opting in asserts two properties of
    #: the growth hooks: (a) they read at most ``latest_rtt`` / ``min_rtt``
    #: / ``max_rtt`` (constant under a run of identical samples) but not the
    #: evolving ``srtt``, and (b) they ignore ``ctx.newly_acked_packets``
    #: (so the engine may batch runs whose ACKs cover more than one packet,
    #: e.g. after an ACK was lost). The conservative default keeps unknown
    #: subclasses on the per-ACK interleaved path; every registry algorithm
    #: opts in except Westwood+, whose idle-gap detector reads ``srtt`` and
    #: whose bandwidth filter counts ``newly_acked_packets`` on every ACK.
    batch_decoupled: bool = False

    def on_connection_start(self, state: CongestionState) -> None:
        """Initialise per-connection algorithm state."""

    # -- slow start -------------------------------------------------------
    def on_ack_slow_start(self, state: CongestionState, ctx: AckContext) -> None:
        """Grow the window during slow start.

        The default is the standard slow start used by every deployed stack:
        one packet per received ACK, independent of how many packets the ACK
        covers (Linux without appropriate byte counting). This matters for
        CAAI: a lost ACK therefore reduces the observed growth, which is what
        the boundary-RTT estimator of Section V-A corrects for.
        """
        state.cwnd += 1.0

    # -- congestion avoidance --------------------------------------------
    @abstractmethod
    def on_ack_avoidance(self, state: CongestionState, ctx: AckContext) -> None:
        """Grow the window during congestion avoidance (called once per ACK)."""

    def on_ack_avoidance_batch(self, state: CongestionState, ctx: AckContext,
                               count: int) -> tuple[int, list[float] | None]:
        """Grow the window for up to ``count`` consecutive avoidance ACKs.

        Returns ``(consumed, cwnd_log)``. Contract (enforced by the
        batch/scalar parity tests):

        * processing ``consumed`` ACKs must be bit-identical to that many
          sequential :meth:`on_ack_avoidance` calls with the same (frozen,
          constant) ``ctx`` -- overrides therefore replay the exact
          floating-point operation sequence of the scalar hook, merely
          hoisting attribute access and allocation out of the loop;
        * ``consumed`` may be less than ``count`` only when the window fell
          back below ``ssthresh`` (the scalar engine would route the next
          ACK through slow start again); implementations that can shrink the
          window must stop there;
        * ``cwnd_log`` is ``None`` when the implementation guarantees
          ``cwnd`` evolved monotonically non-decreasing across the run (the
          sender then derives the transmission window from the final value
          alone), or the list of ``cwnd`` values after each processed ACK
          otherwise;
        * splitting a run (``count = a`` then ``count = b``) must equal one
          ``count = a + b`` call, so the sender may peel off the final ACK of
          a round.

        The default loops over the scalar hook and logs every ``cwnd``, which
        satisfies the contract for any subclass. A class that overrides
        :meth:`on_ack_avoidance` without revisiting its inherited batch
        override is detected by the sender and routed back to this default.
        """
        log: list[float] = []
        append = log.append
        consumed = 0
        while consumed < count:
            self.on_ack_avoidance(state, ctx)
            append(state.cwnd)
            consumed += 1
            if state.cwnd < state.ssthresh:
                break
        return consumed, log

    def on_round_complete(self, state: CongestionState, ctx: AckContext) -> None:
        """Hook invoked once per RTT round (used by delay-based algorithms)."""

    # -- explicit congestion notification ---------------------------------
    def on_ecn_feedback(self, state: CongestionState, marked: int,
                        acked: int) -> None:
        """Hook invoked when the receiver reports ECN congestion marks.

        ``marked`` of the ``acked`` packets covered by the feedback carried a
        congestion-experienced codepoint. Only fed when a link actually marks
        (the ``ecn_mark_probability`` knob, default off), and never from the
        per-ACK fast paths, so algorithms ignoring it -- this default no-op --
        behave bit-identically with and without the plumbing.
        """

    # -- congestion events ------------------------------------------------
    @abstractmethod
    def ssthresh_after_loss(self, state: CongestionState) -> float:
        """Return the new slow start threshold after a loss event or timeout.

        This encodes the multiplicative decrease parameter: the paper's
        feature ``beta`` is ``ssthresh_after_loss(state) / state.cwnd``.
        """

    def multiplicative_decrease(self, state: CongestionState) -> float:
        """Return ``beta`` = ssthresh after loss divided by the current window."""
        if state.cwnd <= 0:
            return 0.0
        return self.ssthresh_after_loss(state) / state.cwnd

    def on_timeout(self, state: CongestionState, now: float) -> None:
        """React to a retransmission timeout.

        The standard reaction (RFC 5681): remember the pre-timeout window,
        apply the multiplicative decrease to obtain the new ssthresh, and
        collapse the window to one packet. Algorithms that need additional
        state resets override this and call ``super().on_timeout``.
        """
        state.w_max = state.cwnd
        state.ssthresh = max(MIN_SSTHRESH, self.ssthresh_after_loss(state))
        state.cwnd = MIN_CWND
        state.last_congestion_time = now
        state.avoidance_rounds = 0
        state.clamp()

    def on_loss_event(self, state: CongestionState, now: float) -> None:
        """React to a fast-retransmit loss event (three duplicate ACKs).

        CAAI deliberately emulates timeouts rather than loss events
        (Section IV-B), but the sender supports both so the substrate is a
        complete TCP model.
        """
        state.w_max = state.cwnd
        state.ssthresh = max(MIN_SSTHRESH, self.ssthresh_after_loss(state))
        state.cwnd = state.ssthresh
        state.last_congestion_time = now
        state.avoidance_rounds = 0
        state.clamp()

    # -- misc --------------------------------------------------------------
    def time_since_congestion(self, state: CongestionState, now: float) -> float:
        if state.last_congestion_time is None:
            return 0.0
        return max(0.0, now - state.last_congestion_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"<{type(self).__name__} name={self.name!r}>"


class RenoLikeMixin:
    """Shared helper implementing the AIMD additive increase of one per RTT."""

    @staticmethod
    def reno_increase(state: CongestionState) -> None:
        state.cwnd += 1.0 / max(state.cwnd, 1.0)
