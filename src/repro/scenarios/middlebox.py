"""Hostile middlebox models on the ACK path.

Real paths put more than netem between CAAI and a server: NATs and
accelerators thin or stretch ACK streams, policers rate-limit them, and
cross-traffic bursts swallow them in clumps. These models intercept the
probe's ACK ladder inside a protocol-transparent sender wrapper (the
:class:`~repro.faults.wrappers.FaultySender` mold): everything not
intercepted delegates to the real sender, and — crucially — every
degradation here is **deterministic**, consuming zero draws from the probe's
rng stream, so a middlebox with all knobs neutral leaves traces
bit-identical.

Per-source drop accounting lands in a :class:`~repro.net.link.LinkStats`
(``thinned_acks``, ``policer_dropped``, ``cross_traffic_dropped``), so
scenario reports can explain *why* accuracy fell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.gather import _filter_ack_runs
from repro.net.link import LinkStats, validate_windows


@dataclass(frozen=True)
class MiddleboxConfig:
    """Knobs of the ACK-path middlebox chain (all neutral by default)."""

    #: Pass only every ``k``-th ACK (plus the round's final ACK, so the
    #: cumulative point still reaches the sender); ``1`` disables thinning.
    thin_every: int = 1
    #: Seconds each ACK is delayed (an ACK "stretcher"); ``0`` disables.
    stretch_seconds: float = 0.0
    #: Token-bucket policer burst capacity in ACKs; ``None`` disables.
    policer_capacity: int | None = None
    #: Policer refill rate in ACKs per simulated second.
    policer_rate: float = 0.0
    #: Cross-traffic burst period in seconds; ``None`` disables bursts.
    cross_period: float | None = None
    #: Burst length in seconds from each period start.
    cross_duration: float = 0.0
    #: During a burst, drop every ``m``-th ACK (0-based index multiples).
    cross_drop_every: int = 2
    #: Optional explicit burst windows, validated like link outages.
    cross_windows: tuple = ()

    def __post_init__(self) -> None:
        if self.thin_every < 1:
            raise ValueError("thin_every must be at least 1")
        if self.stretch_seconds < 0:
            raise ValueError("stretch_seconds must be non-negative")
        if self.policer_capacity is not None:
            if self.policer_capacity < 1:
                raise ValueError("policer_capacity must be at least 1")
            if self.policer_rate <= 0:
                raise ValueError("policer_rate must be positive when the "
                                 "policer is enabled")
        if self.cross_period is not None:
            if self.cross_period <= 0:
                raise ValueError("cross_period must be positive")
            if not 0 < self.cross_duration <= self.cross_period:
                raise ValueError("cross_duration must lie in "
                                 "(0, cross_period]")
            if self.cross_drop_every < 1:
                raise ValueError("cross_drop_every must be at least 1")
        object.__setattr__(
            self, "cross_windows",
            validate_windows(self.cross_windows, name="cross_windows"))

    def is_neutral(self) -> bool:
        """Whether every knob is at its pass-through default.

        Returns:
            ``True`` when the chain cannot alter a single ACK.
        """
        return (self.thin_every == 1 and self.stretch_seconds == 0.0
                and self.policer_capacity is None
                and self.cross_period is None and not self.cross_windows)


class TokenBucketPolicer:
    """A token-bucket ACK policer (deterministic, simulated-time refill)."""

    def __init__(self, capacity: int, rate: float):
        """Create a full bucket.

        Args:
            capacity: Maximum tokens (one token admits one ACK).
            rate: Refill rate in tokens per simulated second.
        """
        self.capacity = capacity
        self.rate = rate
        self.tokens = float(capacity)
        self.last_time: float | None = None

    def admit(self, count: int, now: float) -> int:
        """How many of ``count`` ACKs arriving at ``now`` pass the policer.

        The bucket refills over the simulated time elapsed since the last
        call; ACKs beyond the available tokens are dropped from the tail
        (the burst's front gets through, exactly like a real policer).

        Args:
            count: ACKs offered in this batch.
            now: Current simulated time.

        Returns:
            The number admitted, between 0 and ``count``.
        """
        if self.last_time is not None and now > self.last_time:
            self.tokens = min(float(self.capacity),
                              self.tokens + (now - self.last_time) * self.rate)
        self.last_time = now
        admitted = min(count, int(self.tokens))
        self.tokens -= admitted
        return admitted


class MiddleboxSender:
    """A sender proxy applying the ACK-path middlebox chain.

    Intercepts the two batched ACK entry points
    (:meth:`~repro.tcp.connection.TcpSender.on_ack_run` and
    :meth:`~repro.tcp.connection.TcpSender.on_ack_ladder`), filters the
    round's ACKs through thinning, the policer and cross-traffic bursts in
    that order, stretches the delivery time, and delegates the survivors.
    Everything else proxies to the wrapped sender untouched.
    """

    def __init__(self, sender, config: MiddleboxConfig, stats: LinkStats):
        """Wrap ``sender`` with the middlebox chain of ``config``.

        Args:
            sender: The real :class:`~repro.tcp.connection.TcpSender`.
            config: The middlebox knobs.
            stats: Shared per-server accounting for the drops.
        """
        object.__setattr__(self, "_sender", sender)
        object.__setattr__(self, "_config", config)
        object.__setattr__(self, "_stats", stats)
        object.__setattr__(self, "_policer",
                           None if config.policer_capacity is None else
                           TokenBucketPolicer(config.policer_capacity,
                                              config.policer_rate))

    # --------------------------------------------------------- the ACK chain
    def _in_burst(self, now: float) -> bool:
        """Whether cross-traffic is bursting at time ``now``."""
        config = self._config
        if config.cross_period is not None:
            if now % config.cross_period < config.cross_duration:
                return True
        return any(start <= now < end for start, end in config.cross_windows)

    def _keep_mask(self, count: int, now: float) -> np.ndarray:
        """Deterministic per-ACK keep mask for one round of ``count`` ACKs."""
        config = self._config
        stats = self._stats
        keep = np.ones(count, dtype=bool)
        if config.thin_every > 1:
            thinned = (np.arange(1, count + 1) % config.thin_every) != 0
            thinned[-1] = False  # the round's final ACK always escapes
            dropped = int((keep & thinned).sum())
            stats.thinned_acks += dropped
            keep &= ~thinned
        if self._policer is not None:
            offered = int(keep.sum())
            admitted = self._policer.admit(offered, now)
            if admitted < offered:
                stats.policer_dropped += offered - admitted
                survivors = np.flatnonzero(keep)
                keep[survivors[admitted:]] = False
        if self._in_burst(now):
            survivors = np.flatnonzero(keep)
            victims = survivors[::config.cross_drop_every]
            stats.cross_traffic_dropped += len(victims)
            keep[victims] = False
        stats.delivered += int(keep.sum())
        return keep

    # ------------------------------------------------ intercepted sender API
    def on_ack_run(self, ladder, now):
        """One round of cumulative ACKs, filtered through the middlebox chain.

        Args:
            ladder: Cumulative ACK values, one per received packet.
            now: Current simulated time.

        Returns:
            The sender's emitted segments for the next round.
        """
        config = self._config
        if config.is_neutral():
            return self._sender.on_ack_run(ladder, now)
        if ladder:
            keep = self._keep_mask(len(ladder), now)
            if not keep.all():
                ladder = [value for value, kept in zip(ladder, keep) if kept]
        return self._sender.on_ack_run(ladder, now + config.stretch_seconds)

    def on_ack_ladder(self, runs, now):
        """One round of compressed ACK runs, filtered through the chain.

        Args:
            runs: The compressed ``(kind, value, count)`` ladder runs.
            now: Current simulated time.

        Returns:
            The sender's emitted blocks for the next round.
        """
        config = self._config
        if config.is_neutral():
            return self._sender.on_ack_ladder(runs, now)
        total = sum(count for _, _, count in runs)
        if total:
            keep = self._keep_mask(total, now)
            if not keep.all():
                runs = _filter_ack_runs(runs, ~keep)
        return self._sender.on_ack_ladder(runs, now + config.stretch_seconds)

    # --------------------------------------------------- transparent proxying
    def __getattr__(self, name):
        """Delegate every non-intercepted attribute to the real sender.

        Args:
            name: Attribute name.

        Returns:
            The wrapped sender's attribute.
        """
        return getattr(self._sender, name)

    def __setattr__(self, name, value):
        """Forward attribute writes to the real sender.

        Args:
            name: Attribute name.
            value: Value to set.
        """
        setattr(self._sender, name, value)


class MiddleboxServer:
    """A server proxy that puts a middlebox chain on every connection's ACKs.

    Wraps any :class:`~repro.core.gather.ProbeableServer`; each sender the
    inner server opens is returned inside a :class:`MiddleboxSender`. Like
    the fault wrappers, this class is deliberately not an instance of the
    concrete server types, so the columnar engine routes it onto the exact
    scalar probe path.
    """

    _OWN = ("_server", "_config", "stats")

    def __init__(self, server, config: MiddleboxConfig):
        """Wrap ``server`` behind the middlebox chain of ``config``.

        Args:
            server: The real server (``WebServer`` or ``SyntheticServer``).
            config: The middlebox knobs applied to every connection.
        """
        object.__setattr__(self, "_server", server)
        object.__setattr__(self, "_config", config)
        object.__setattr__(self, "stats", LinkStats())

    def accepts_mss(self, mss: int) -> bool:
        """Whether the wrapped server accepts a connection with this MSS.

        Args:
            mss: The proposed maximum segment size.

        Returns:
            The wrapped server's verdict (the middlebox is ACK-path only).
        """
        return self._server.accepts_mss(mss)

    def uses_frto(self) -> bool:
        """Whether the wrapped server runs F-RTO.

        Returns:
            The wrapped server's F-RTO flag.
        """
        return self._server.uses_frto()

    def open_connection(self, mss: int, now: float, requested_bytes: int):
        """Open a connection whose ACK path crosses the middlebox.

        Args:
            mss: Negotiated maximum segment size.
            now: Connection open time (simulated seconds).
            requested_bytes: Bytes the probe would like to transfer.

        Returns:
            The inner sender wrapped in a :class:`MiddleboxSender`, or
            ``None`` if the wrapped server refuses the connection.
        """
        sender = self._server.open_connection(mss, now, requested_bytes)
        if sender is None:
            return None
        return MiddleboxSender(sender, self._config, self.stats)

    def __getattr__(self, name):
        """Delegate every other attribute to the wrapped server.

        Args:
            name: Attribute name.

        Returns:
            The wrapped server's attribute (e.g. ``site``, ``profile``).
        """
        return getattr(self._server, name)

    def __setattr__(self, name, value):
        """Forward writes to the wrapped server (except wrapper-owned state).

        Args:
            name: Attribute name.
            value: Value to set.
        """
        if name in self._OWN:
            object.__setattr__(self, name, value)
        else:
            setattr(self._server, name, value)
