"""Adversarial scenario layer: trace-driven links, middleboxes, evasion.

Where :mod:`repro.faults` breaks the probing *infrastructure*, this package
degrades the probing *environment*: time-varying link traces, hostile
middleboxes on the ACK path, and evasive servers that perturb their own
window dynamics. Packs bundle these into named regimes the census, the
training-set builder and the robustness experiment share
(docs/SCENARIOS.md).
"""

from repro.scenarios.evasion import (
    EvasionConfig,
    EvasiveSender,
    EvasiveServer,
    evasion_rng,
)
from repro.scenarios.link import TraceDrivenLink
from repro.scenarios.middlebox import (
    MiddleboxConfig,
    MiddleboxSender,
    MiddleboxServer,
    TokenBucketPolicer,
)
from repro.scenarios.packs import (
    SCENARIO_PACKS,
    ScenarioPack,
    scenario_pack_by_name,
)
from repro.scenarios.tracefile import (
    LinkTrace,
    TraceEntry,
    cellular_condition_database,
    load_trace,
    merge_traces,
    packaged_trace,
    parse_trace,
    trace_condition_database,
)

__all__ = [
    "EvasionConfig",
    "EvasiveSender",
    "EvasiveServer",
    "evasion_rng",
    "TraceDrivenLink",
    "MiddleboxConfig",
    "MiddleboxSender",
    "MiddleboxServer",
    "TokenBucketPolicer",
    "SCENARIO_PACKS",
    "ScenarioPack",
    "scenario_pack_by_name",
    "LinkTrace",
    "TraceEntry",
    "cellular_condition_database",
    "load_trace",
    "merge_traces",
    "packaged_trace",
    "parse_trace",
    "trace_condition_database",
]
