"""A NetemLink whose parameters replay a time-varying trace.

:class:`TraceDrivenLink` subclasses :class:`~repro.net.link.NetemLink` and
refreshes delay, jitter and loss from a :class:`~repro.scenarios.tracefile
.LinkTrace` at every send, so the discrete-event contract (scheduling, FIFO
preservation, rng consumption per packet) is exactly the parent's — only the
parameters move. Bandwidth is modelled as per-packet serialisation delay
added to the propagation delay, the same first-order treatment the net-rl
``Link(trace, ...)`` exemplar uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.link import NetemLink
from repro.scenarios.tracefile import LinkTrace, TRACE_MODES

#: Packet size used to convert trace bandwidth into serialisation delay.
DEFAULT_PACKET_BYTES = 1500


@dataclass
class TraceDrivenLink(NetemLink):
    """Unidirectional link replaying a time-varying trace.

    The trace governs ``delay`` and ``loss_probability``: at each send the
    entry covering ``simulator.now`` (with the configured horizon ``mode``)
    is applied before the parent's per-packet machinery runs. Jitter,
    reordering and duplication keep whatever static values the link was
    built with, so a trace can be layered on top of the usual netem knobs.
    """

    trace: LinkTrace | None = None
    #: Horizon semantics, ``"hold"`` or ``"wrap"`` (see ``LinkTrace.at``).
    mode: str = "hold"
    #: Packet size for the bandwidth term; ``0`` disables serialisation delay.
    packet_bytes: int = DEFAULT_PACKET_BYTES
    #: Times at which the trace was consulted (diagnostics for tests).
    lookups: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.trace is None:
            raise ValueError("TraceDrivenLink requires a trace")
        if self.mode not in TRACE_MODES:
            valid = ", ".join(TRACE_MODES)
            raise ValueError(f"unknown trace mode {self.mode!r}; "
                             f"valid: {valid}")
        if self.packet_bytes < 0:
            raise ValueError("packet_bytes must be non-negative")

    def send(self, payload, deliver: Callable[[object], None]) -> None:
        """Send ``payload`` under the trace entry covering the current time."""
        entry = self.trace.at(self.simulator.now, mode=self.mode)
        self.lookups += 1
        serialisation = 0.0
        if self.packet_bytes > 0:
            serialisation = (self.packet_bytes * 8.0
                             / (entry.bandwidth_mbps * 1e6))
        self.delay = entry.delay_ms / 1000.0 + serialisation
        self.loss_probability = entry.loss
        super().send(payload, deliver)
