"""Evasive servers: window dynamics perturbed to dodge fingerprinting.

An operator who knows CAAI is probing can blur the very signal the
classifier reads — the per-round window trajectory. :class:`EvasiveServer`
wraps any :class:`~repro.core.gather.ProbeableServer` and perturbs each
connection it opens:

* **randomized ssthresh** — the initial slow-start threshold is drawn per
  connection, so the slow-start exit point stops matching the algorithm's
  native pattern;
* **jittered growth** — rounds randomly withhold a fraction of the emitted
  burst, smearing the window estimates;
* **delayed state transitions** — the retransmission timer is reported
  late, shifting the timeout edge the probe synchronises on.

All perturbation randomness comes from a dedicated stream derived from
``sha256(pack seed, server id)`` — the probe's rng stream is never touched,
so a wrapper with every knob neutral consumes **zero** extra draws and the
traces are bit-identical (the acceptance bar this layer is held to, and
what the transparency tests assert).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EvasionConfig:
    """Knobs of an evasive server (all neutral by default)."""

    #: Random initial ssthresh drawn uniformly from this (low, high) window
    #: range in packets; ``None`` keeps the algorithm's native threshold.
    ssthresh_range: tuple[float, float] | None = None
    #: Per-round probability of withholding part of the emitted burst.
    growth_jitter: float = 0.0
    #: Largest fraction of a round's packets a jitter event withholds.
    growth_holdback: float = 0.3
    #: Seconds added to every reported retransmission-timer deadline.
    timer_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.ssthresh_range is not None:
            low, high = self.ssthresh_range
            if not 0 < low <= high:
                raise ValueError("ssthresh_range must satisfy 0 < low <= high")
        if not 0.0 <= self.growth_jitter <= 1.0:
            raise ValueError("growth_jitter must be a probability")
        if not 0.0 <= self.growth_holdback < 1.0:
            raise ValueError("growth_holdback must lie in [0, 1)")
        if self.timer_delay < 0:
            raise ValueError("timer_delay must be non-negative")

    def is_neutral(self) -> bool:
        """Whether every knob is at its pass-through default.

        Returns:
            ``True`` when the wrapper cannot perturb anything.
        """
        return (self.ssthresh_range is None and self.growth_jitter == 0.0
                and self.timer_delay == 0.0)


def evasion_rng(pack_seed: int, server_id: str,
                connection_index: int) -> np.random.Generator:
    """The dedicated perturbation stream of one evasive connection.

    Derived from ``sha256(pack seed, server id, connection index)`` so it is
    deterministic per connection, independent of backend and scheduling, and
    never overlaps the probe's own stream.

    Args:
        pack_seed: The scenario pack's seed.
        server_id: Stable server identifier.
        connection_index: Zero-based connection counter of the wrapper.

    Returns:
        A seeded :class:`numpy.random.Generator`.
    """
    digest = hashlib.sha256(
        f"evasion:{pack_seed}:{server_id}:{connection_index}".encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class EvasiveSender:
    """A sender proxy applying one connection's evasive perturbations."""

    def __init__(self, sender, config: EvasionConfig,
                 rng: np.random.Generator):
        """Wrap ``sender`` with the perturbations of ``config``.

        Args:
            sender: The real :class:`~repro.tcp.connection.TcpSender`.
            config: The evasion knobs.
            rng: The connection's dedicated perturbation stream.
        """
        object.__setattr__(self, "_sender", sender)
        object.__setattr__(self, "_config", config)
        object.__setattr__(self, "_rng", rng)

    # -------------------------------------------------------- perturbations
    def _withhold(self, emitted, packet_count, truncate) -> object:
        """Randomly truncate one round's emission (jittered growth)."""
        config = self._config
        if config.growth_jitter <= 0.0 or not emitted:
            return emitted
        rng = self._rng
        fires = rng.random() < config.growth_jitter
        fraction = float(rng.random()) * config.growth_holdback
        if not fires or fraction <= 0.0:
            return emitted
        total = packet_count(emitted)
        keep = max(1, total - int(total * fraction))
        if keep >= total:
            return emitted
        return truncate(emitted, keep)

    def _withhold_segments(self, segments):
        """Jittered growth on the per-segment emission path."""
        return self._withhold(segments, len,
                              lambda items, keep: items[:keep])

    def _withhold_blocks(self, blocks):
        """Jittered growth on the block emission path."""
        def packet_count(items):
            return sum(len(block) for block in items)

        def truncate(items, keep):
            out = []
            for block in items:
                size = len(block)
                if keep <= 0:
                    break
                if size <= keep:
                    out.append(block)
                    keep -= size
                else:
                    out.append(block.slice(0, keep))
                    keep = 0
            return out

        return self._withhold(blocks, packet_count, truncate)

    # ------------------------------------------------ intercepted sender API
    def on_ack_run(self, ladder, now):
        """One round of cumulative ACKs; the response may be withheld.

        Args:
            ladder: Cumulative ACK values, one per received packet.
            now: Current simulated time.

        Returns:
            The (possibly truncated) emitted segments for the next round.
        """
        return self._withhold_segments(self._sender.on_ack_run(ladder, now))

    def on_ack_ladder(self, runs, now):
        """One round of compressed ACK runs; the response may be withheld.

        Args:
            runs: The compressed ``(kind, value, count)`` ladder runs.
            now: Current simulated time.

        Returns:
            The (possibly truncated) emitted blocks for the next round.
        """
        return self._withhold_blocks(self._sender.on_ack_ladder(runs, now))

    def next_timer_deadline(self):
        """The retransmission-timer deadline, reported late when configured.

        Returns:
            The wrapped sender's deadline plus ``timer_delay``, or ``None``
            when no timer is pending.
        """
        deadline = self._sender.next_timer_deadline()
        if deadline is None or self._config.timer_delay == 0.0:
            return deadline
        return deadline + self._config.timer_delay

    # --------------------------------------------------- transparent proxying
    def __getattr__(self, name):
        """Delegate every non-intercepted attribute to the real sender.

        Args:
            name: Attribute name.

        Returns:
            The wrapped sender's attribute.
        """
        return getattr(self._sender, name)

    def __setattr__(self, name, value):
        """Forward attribute writes to the real sender.

        Args:
            name: Attribute name.
            value: Value to set.
        """
        setattr(self._sender, name, value)


class EvasiveServer:
    """A server proxy whose connections evade window fingerprinting.

    Wraps any :class:`~repro.core.gather.ProbeableServer`; each opened
    connection gets its own perturbation stream (:func:`evasion_rng`) and is
    returned inside an :class:`EvasiveSender`. Deliberately not an instance
    of the concrete server types, so the columnar engine routes it onto the
    exact scalar probe path.
    """

    _OWN = ("_server", "_config", "_pack_seed", "_server_id",
            "connections_wrapped")

    def __init__(self, server, config: EvasionConfig, pack_seed: int,
                 server_id: str):
        """Wrap ``server`` with the evasive behaviour of ``config``.

        Args:
            server: The real server (``WebServer`` or ``SyntheticServer``).
            config: The evasion knobs.
            pack_seed: The scenario pack's seed (perturbation-stream root).
            server_id: Stable server identifier for stream derivation.
        """
        object.__setattr__(self, "_server", server)
        object.__setattr__(self, "_config", config)
        object.__setattr__(self, "_pack_seed", pack_seed)
        object.__setattr__(self, "_server_id", server_id)
        object.__setattr__(self, "connections_wrapped", 0)

    def accepts_mss(self, mss: int) -> bool:
        """Whether the wrapped server accepts a connection with this MSS.

        Args:
            mss: The proposed maximum segment size.

        Returns:
            The wrapped server's verdict.
        """
        return self._server.accepts_mss(mss)

    def uses_frto(self) -> bool:
        """Whether the wrapped server runs F-RTO.

        Returns:
            The wrapped server's F-RTO flag.
        """
        return self._server.uses_frto()

    def open_connection(self, mss: int, now: float, requested_bytes: int):
        """Open a connection with this server's evasive perturbations.

        With a neutral config the inner sender is returned unwrapped and no
        perturbation stream is created — the protocol-transparency
        guarantee.

        Args:
            mss: Negotiated maximum segment size.
            now: Connection open time (simulated seconds).
            requested_bytes: Bytes the probe would like to transfer.

        Returns:
            The (possibly wrapped) sender, or ``None`` if the wrapped
            server refuses the connection.
        """
        sender = self._server.open_connection(mss, now, requested_bytes)
        if sender is None or self._config.is_neutral():
            return sender
        index = self.connections_wrapped
        object.__setattr__(self, "connections_wrapped", index + 1)
        rng = evasion_rng(self._pack_seed, self._server_id, index)
        if self._config.ssthresh_range is not None:
            low, high = self._config.ssthresh_range
            sender.state.ssthresh = float(rng.uniform(low, high))
        return EvasiveSender(sender, self._config, rng)

    def __getattr__(self, name):
        """Delegate every other attribute to the wrapped server.

        Args:
            name: Attribute name.

        Returns:
            The wrapped server's attribute (e.g. ``site``, ``profile``).
        """
        return getattr(self._server, name)

    def __setattr__(self, name, value):
        """Forward writes to the wrapped server (except wrapper-owned state).

        Args:
            name: Attribute name.
            value: Value to set.
        """
        if name in self._OWN:
            object.__setattr__(self, name, value)
        else:
            setattr(self._server, name, value)
