"""Trace-driven network conditions (JSONL link traces).

The paper's emulation draws each path from a static condition database; real
paths — cellular links above all — vary over time. This module loads link
traces in a small JSONL schema (one object per line)::

    {"time": 0.0, "bandwidth_mbps": 6.0, "delay_ms": 70.0, "loss": 0.005}

``time`` is seconds from trace start and must be strictly increasing;
``bandwidth_mbps`` is the bottleneck rate, ``delay_ms`` the one-way
propagation delay, ``loss`` the random loss probability in ``[0, 1)``. The
replay semantics follow the net-rl simulator's ``Link(trace, ...)`` pattern
(SNIPPETS.md snippet 3): a lookup at time ``t`` returns the last entry at or
before ``t``, and past the trace horizon the trace either holds its last
entry (``"hold"``) or wraps around periodically (``"wrap"``). Multiple traces
merge under namespaced keys (snippet 2's ``{index}-`` prefix idiom) so packs
can reference them unambiguously.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.net.conditions import ConditionDatabase

#: Directory of the link traces shipped with the scenario layer.
PACKAGED_TRACE_DIR = Path(__file__).resolve().parent / "traces"

#: Horizon semantics accepted by :meth:`LinkTrace.at`.
TRACE_MODES = ("hold", "wrap")


@dataclass(frozen=True)
class TraceEntry:
    """One sample of a time-varying link."""

    time: float
    bandwidth_mbps: float
    delay_ms: float
    loss: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("trace entry time must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must lie in [0, 1)")


@dataclass(frozen=True)
class LinkTrace:
    """A replayable link trace: samples ordered by strictly increasing time."""

    name: str
    entries: tuple[TraceEntry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError(f"trace {self.name!r} must not be empty")
        times = [entry.time for entry in self.entries]
        for index in range(1, len(times)):
            if times[index] <= times[index - 1]:
                raise ValueError(
                    f"trace {self.name!r} timestamps must be strictly "
                    f"increasing: entry {index} has time {times[index]} after "
                    f"{times[index - 1]}")
        object.__setattr__(self, "_times", tuple(times))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def horizon(self) -> float:
        """Time of the last sample (seconds from trace start)."""
        return self.entries[-1].time

    def at(self, t: float, mode: str = "hold") -> TraceEntry:
        """The link state governing time ``t``.

        Args:
            t: Seconds from trace start (clamped to 0 when negative).
            mode: Horizon semantics — ``"hold"`` keeps the last entry
                forever; ``"wrap"`` replays the trace periodically with
                period :attr:`horizon`.

        Returns:
            The last :class:`TraceEntry` at or before the effective time
            (the first entry when ``t`` precedes it).

        Raises:
            ValueError: If ``mode`` is not one of :data:`TRACE_MODES`.
        """
        if mode not in TRACE_MODES:
            valid = ", ".join(TRACE_MODES)
            raise ValueError(f"unknown trace mode {mode!r}; valid: {valid}")
        if t < 0:
            t = 0.0
        if t > self.horizon and mode == "wrap" and self.horizon > 0:
            t = t % self.horizon
        index = bisect_right(self._times, t) - 1
        if index < 0:
            index = 0
        return self.entries[index]


def parse_trace(lines, name: str) -> LinkTrace:
    """Build a :class:`LinkTrace` from JSONL lines.

    Args:
        lines: Iterable of JSONL lines (blank lines are skipped).
        name: Trace name recorded on the result and used in errors.

    Returns:
        The validated :class:`LinkTrace`.

    Raises:
        ValueError: On malformed JSON, missing keys, out-of-range values,
            an empty trace, or non-increasing timestamps.
    """
    entries = []
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"trace {name!r} line {line_number}: invalid JSON "
                f"({error})") from None
        try:
            entry = TraceEntry(
                time=float(record["time"]),
                bandwidth_mbps=float(record["bandwidth_mbps"]),
                delay_ms=float(record["delay_ms"]),
                loss=float(record["loss"]),
            )
        except KeyError as error:
            raise ValueError(
                f"trace {name!r} line {line_number}: missing key "
                f"{error.args[0]!r}") from None
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"trace {name!r} line {line_number}: {error}") from None
        entries.append(entry)
    return LinkTrace(name=name, entries=tuple(entries))


def load_trace(path: str | Path) -> LinkTrace:
    """Load one JSONL link trace from disk.

    Args:
        path: Path to the ``.jsonl`` file; the stem becomes the trace name.

    Returns:
        The validated :class:`LinkTrace`.
    """
    path = Path(path)
    return parse_trace(path.read_text().splitlines(), name=path.stem)


def merge_traces(traces, into: dict[str, LinkTrace] | None = None
                 ) -> dict[str, LinkTrace]:
    """Merge traces under namespaced keys (snippet 2's ``{index}-`` prefix).

    Args:
        traces: Iterable of :class:`LinkTrace` objects, in loading order.
        into: Optional existing mapping to merge into (e.g. a previously
            merged batch); the new batch's indices continue from its size.

    Returns:
        Mapping from ``"{index}-{name}"`` to each trace — unique even when
        two files share a stem.

    Raises:
        ValueError: If two traces collide on the same namespaced key, which
            can happen when merging into an existing mapping whose keys
            overlap the new batch's namespace.
    """
    merged: dict[str, LinkTrace] = dict(into) if into else {}
    for index, trace in enumerate(traces, start=len(merged)):
        key = f"{index}-{trace.name}"
        if key in merged:
            raise ValueError(f"trace namespace collision on {key!r}")
        merged[key] = trace
    return merged


def packaged_trace(name: str) -> LinkTrace:
    """Load one of the traces shipped under ``scenarios/traces``.

    Args:
        name: Trace stem, e.g. ``"cellular"``.

    Returns:
        The loaded :class:`LinkTrace`.

    Raises:
        ValueError: If no such packaged trace exists; the message lists the
            available names.
    """
    path = PACKAGED_TRACE_DIR / f"{name}.jsonl"
    if not path.exists():
        available = ", ".join(sorted(
            p.stem for p in PACKAGED_TRACE_DIR.glob("*.jsonl")))
        raise ValueError(f"unknown packaged trace {name!r}; "
                         f"available: {available}")
    return load_trace(path)


def trace_condition_database(trace: LinkTrace, size: int,
                             seed: int) -> ConditionDatabase:
    """Resample a link trace into a condition database.

    Each emulated path is an independent draw of one trace sample: the RTT is
    twice the sampled one-way delay with mild multiplicative noise (different
    attach points see slightly different paths), the RTT jitter reflects the
    trace's own delay variability, and the loss rate is the sampled loss plus
    a small exponential tail. All values are clipped to the ranges the
    probing model supports.

    Args:
        trace: The link trace to resample.
        size: Number of emulated paths to draw.
        seed: Seed of the resampling draws.

    Returns:
        A :class:`~repro.net.conditions.ConditionDatabase` of ``size`` paths.
    """
    if size <= 0:
        raise ValueError("database size must be positive")
    rng = np.random.default_rng(seed)
    rtts = np.array([2.0 * entry.delay_ms / 1000.0 for entry in trace.entries])
    losses = np.array([entry.loss for entry in trace.entries])
    picks = rng.integers(0, len(trace), size=size)
    noise = rng.lognormal(mean=0.0, sigma=0.15, size=size)
    average_rtts = np.clip(rtts[picks] * noise, 0.005, 0.79)
    base_std = max(float(np.std(rtts)), 0.001)
    rtt_stds = np.clip(base_std * rng.lognormal(0.0, 0.5, size=size),
                       0.0002, 0.25)
    loss_rates = np.clip(
        losses[picks] + rng.exponential(scale=0.002, size=size), 0.0, 0.15)
    return ConditionDatabase(average_rtts=average_rtts, rtt_stds=rtt_stds,
                             loss_rates=loss_rates)


def cellular_condition_database(size: int, seed: int) -> ConditionDatabase:
    """The ``"cellular-trace"`` condition-database preset.

    Args:
        size: Number of emulated paths to draw.
        seed: Seed of the resampling draws.

    Returns:
        A condition database resampled from the packaged cellular trace.
    """
    return trace_condition_database(packaged_trace("cellular"), size, seed)
