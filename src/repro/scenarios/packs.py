"""Scenario packs: named adversarial probing regimes.

A :class:`ScenarioPack` bundles a condition-database preset with optional
middlebox and evasion configurations into one named, picklable unit the
census (``--scenario-pack``), the training-set builder and the robustness
experiment all consume. The registry ships five packs:

* ``paper-baseline`` — the unmodified paper setup (wraps nothing; selecting
  it is byte-identical to selecting no pack at all);
* ``cellular-trace`` — conditions resampled from the packaged cellular link
  trace (time-varying bandwidth/delay/loss), path otherwise clean;
* ``policed`` — a token-bucket ACK policer on the return path;
* ``ack-manipulated`` — an ACK-thinning + ACK-stretching middlebox;
* ``evasive`` — servers that randomize ssthresh, jitter their window growth
  and delay their timers to dodge fingerprinting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scenarios.evasion import EvasionConfig, EvasiveServer
from repro.scenarios.middlebox import MiddleboxConfig, MiddleboxServer


@dataclass(frozen=True)
class ScenarioPack:
    """One named adversarial probing regime."""

    name: str
    description: str
    #: Condition-database preset the pack probes under (``--conditions``).
    condition_preset: str = "paper"
    #: ACK-path middlebox chain; ``None`` leaves the path clean.
    middlebox: MiddleboxConfig | None = None
    #: Evasive-server behaviour; ``None`` leaves servers honest.
    evasion: EvasionConfig | None = None
    #: Root seed of the perturbation streams (never the probe streams).
    seed: int = 0

    def wraps_servers(self) -> bool:
        """Whether this pack changes server behaviour at all.

        Returns:
            ``True`` when a non-neutral middlebox or evasion config is
            present; ``False`` means :meth:`wrap_server` is the identity.
        """
        if self.middlebox is not None and not self.middlebox.is_neutral():
            return True
        if self.evasion is not None and not self.evasion.is_neutral():
            return True
        return False

    def wrap_server(self, server, server_id: str):
        """Apply the pack's wrappers to one server.

        Servers are wrapped evasion-innermost (the server misbehaves, then
        the middlebox mangles its ACK path). A pack with nothing to apply
        returns ``server`` unchanged, keeping the columnar fast path and
        byte-for-byte parity with a pack-free run.

        Args:
            server: The server to wrap (``WebServer``/``SyntheticServer``).
            server_id: Stable identifier used to derive perturbation
                streams.

        Returns:
            The wrapped server, or ``server`` itself for baseline packs.
        """
        wrapped = server
        if self.evasion is not None and not self.evasion.is_neutral():
            wrapped = EvasiveServer(wrapped, self.evasion,
                                    pack_seed=self.seed, server_id=server_id)
        if self.middlebox is not None and not self.middlebox.is_neutral():
            wrapped = MiddleboxServer(wrapped, self.middlebox)
        return wrapped


#: The shipped scenario packs, keyed by name.
SCENARIO_PACKS: dict[str, ScenarioPack] = {
    pack.name: pack for pack in (
        ScenarioPack(
            name="paper-baseline",
            description="The paper's own setup: static condition database, "
                        "clean path, honest servers.",
        ),
        ScenarioPack(
            name="cellular-trace",
            description="Conditions resampled from the packaged cellular "
                        "link trace (time-varying bandwidth/delay/loss).",
            condition_preset="cellular-trace",
        ),
        ScenarioPack(
            name="policed",
            description="A token-bucket policer rate-limits the ACK return "
                        "path; large rounds lose their tails.",
            middlebox=MiddleboxConfig(policer_capacity=192,
                                      policer_rate=220.0),
            seed=1,
        ),
        ScenarioPack(
            name="ack-manipulated",
            description="An accelerator middlebox thins the ACK stream to "
                        "every 4th ACK and stretches delivery by 50 ms.",
            middlebox=MiddleboxConfig(thin_every=4, stretch_seconds=0.05),
            seed=2,
        ),
        ScenarioPack(
            name="evasive",
            description="Servers randomize ssthresh, jitter window growth "
                        "and delay timers to dodge fingerprinting.",
            evasion=EvasionConfig(ssthresh_range=(24.0, 192.0),
                                  growth_jitter=0.25,
                                  growth_holdback=0.3,
                                  timer_delay=0.2),
            seed=3,
        ),
    )
}


def scenario_pack_by_name(name: str) -> ScenarioPack:
    """Look up a scenario pack by name.

    Args:
        name: One of :data:`SCENARIO_PACKS` (``"paper-baseline"``,
            ``"cellular-trace"``, ``"policed"``, ``"ack-manipulated"``,
            ``"evasive"``).

    Returns:
        The matching :class:`ScenarioPack`.

    Raises:
        ValueError: If the name is unknown; the message lists every valid
            pack name.
    """
    try:
        return SCENARIO_PACKS[name]
    except KeyError:
        valid = ", ".join(sorted(SCENARIO_PACKS))
        raise ValueError(f"unknown scenario pack {name!r}; "
                         f"valid names: {valid}") from None
