"""A persistent work queue with lease / heartbeat / steal semantics.

PR 4's sharded census assigns every shard to whichever single invocation is
running; the serving layer generalises that into a **work queue**: any number
of workers *claim* pending shards, *heartbeat* while working on them, and
*steal* shards whose holder stopped heartbeating (a crashed or wedged
worker). The queue never owns results — shard completion lives in the
checkpoint manifest (:class:`~repro.core.checkpoint.CensusCheckpoint`),
which stays the single source of truth — so the queue can be lost, rebuilt
or steal aggressively without ever corrupting a census.

Lease algebra:

* a *lease* on shard ``s`` is ``(worker, generation)``; ``generation``
  counts how many times the shard's lease has been granted (a steal bumps
  it);
* a lease is *expired* once ``now - heartbeat_at >= lease_timeout``;
  claiming an expired lease is a steal: the old holder's generation becomes
  stale, so its later ``heartbeat``/``release`` calls report the loss
  instead of resurrecting the lease;
* completion is decided at commit time by the orchestrator while holding
  the queue's lock, so exactly one holder can mark a shard complete, and a
  stale holder's work is discarded — harmlessly, because shard outcomes are
  a pure function of (census seed, shard indices) and the stolen replay is
  bit-identical.

The queue state is persisted as ``queue.json`` next to the checkpoint
manifest after every mutation (atomic write + rename), so an interrupted
serving process leaves its leases on disk: a restart sees them, waits out
the lease timeout (or is told to reclaim), steals, and resumes — merging
bit-identically to a run that was never interrupted.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.checkpoint import CensusCheckpoint, write_json_atomic

#: Queue state file, stored inside the checkpoint directory.
QUEUE_NAME = "queue.json"

#: On-disk queue format version; bumped on any incompatible change.
QUEUE_FORMAT_VERSION = 1

#: Default seconds without a heartbeat before a lease may be stolen.
DEFAULT_LEASE_TIMEOUT = 30.0


class WorkQueueError(RuntimeError):
    """The queue state file is corrupt or from an incompatible version.

    Attributes:
        path: The offending file (``None`` when not file-specific).
        hint: One-line recovery suggestion.
    """

    def __init__(self, message: str, *, path: str | Path | None = None,
                 hint: str | None = None):
        """Build the error with optional structured context.

        Args:
            message: The full human-readable description.
            path: The offending file, when one is identifiable.
            hint: One-line recovery suggestion.
        """
        super().__init__(message)
        self.path = Path(path) if path is not None else None
        self.hint = hint


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one shard.

    Attributes:
        shard: The claimed shard index.
        worker: The claiming worker's identifier.
        generation: How many grants this shard's lease has seen (steals
            bump it); a lease is *current* only while its generation matches
            the queue's.
        stolen: Whether this grant stole an expired lease.
    """

    shard: int
    worker: str
    generation: int
    stolen: bool = False


class WorkQueue:
    """Lease/heartbeat/steal bookkeeping over a checkpoint's pending shards.

    Thread-safe: every operation holds one re-entrant lock, which the
    orchestrator also borrows (via :meth:`locked`) to make
    check-currency-then-write-shard commits atomic against concurrent
    stealing workers.
    """

    def __init__(self, checkpoint: CensusCheckpoint, *,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 clock=time.time):
        """Attach a queue to a checkpoint, loading persisted lease state.

        Args:
            checkpoint: The checkpoint whose pending shards are the work
                items; its manifest remains the single source of truth for
                completion.
            lease_timeout: Seconds without a heartbeat before a lease is
                stealable.
            clock: Callable returning the current time in seconds; wall
                clock by default so timestamps are comparable across
                processes. Tests inject a fake clock to drive steals
                deterministically.

        Raises:
            WorkQueueError: If a persisted ``queue.json`` exists but is
                unreadable or of an incompatible format version.
            ValueError: If ``lease_timeout`` is not positive.
        """
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self._checkpoint = checkpoint
        self._lease_timeout = float(lease_timeout)
        self._clock = clock
        self._lock = threading.RLock()
        self._state = self._load_state()

    # ------------------------------------------------------------ properties
    @property
    def path(self) -> Path:
        """Where the queue state is persisted (inside the checkpoint dir)."""
        return self._checkpoint.directory / QUEUE_NAME

    @property
    def lease_timeout(self) -> float:
        """Seconds without a heartbeat before a lease is stealable."""
        return self._lease_timeout

    def locked(self) -> threading.RLock:
        """The queue's lock, for callers composing atomic commit sequences.

        Returns:
            The re-entrant lock guarding all queue state.
        """
        return self._lock

    # ------------------------------------------------------------ operations
    def claim(self, worker_id: str) -> Lease | None:
        """Claim the lowest-numbered claimable pending shard.

        A shard is claimable when it is pending in the manifest and either
        unleased, voluntarily released, or holds an expired lease (which is
        then stolen: the generation bumps, invalidating the old holder).

        Args:
            worker_id: The claiming worker's identifier.

        Returns:
            The granted :class:`Lease`, or ``None`` when nothing is
            claimable right now (all pending shards hold live leases).
        """
        with self._lock:
            now = float(self._clock())
            for shard in self._checkpoint.pending_shards():
                entry = self._state["leases"].get(str(shard))
                if entry is None:
                    lease = self._grant(shard, worker_id, generation=0,
                                        stolen=False, now=now)
                    return lease
                if now - float(entry["heartbeat_at"]) >= self._lease_timeout:
                    lease = self._grant(shard, worker_id,
                                        generation=int(entry["generation"]) + 1,
                                        stolen=True, now=now)
                    return lease
            return None

    def heartbeat(self, lease: Lease) -> bool:
        """Refresh a lease's heartbeat.

        Args:
            lease: The lease to refresh.

        Returns:
            ``True`` if the lease is still current (heartbeat recorded);
            ``False`` if it was stolen or its shard completed — the worker
            should abandon the shard.
        """
        with self._lock:
            if not self.is_current(lease):
                return False
            entry = self._state["leases"][str(lease.shard)]
            entry["heartbeat_at"] = float(self._clock())
            self._persist()
            return True

    def is_current(self, lease: Lease) -> bool:
        """Whether a lease still entitles its holder to commit the shard.

        Args:
            lease: The lease to check.

        Returns:
            ``True`` while the shard is pending and the queue's lease entry
            still carries this lease's worker and generation.
        """
        with self._lock:
            if self._checkpoint.shard_status(lease.shard) != "pending":
                return False
            entry = self._state["leases"].get(str(lease.shard))
            return (entry is not None
                    and entry["worker"] == lease.worker
                    and int(entry["generation"]) == lease.generation)

    def release(self, lease: Lease) -> bool:
        """Voluntarily give a lease back (the shard becomes claimable).

        Args:
            lease: The lease to release.

        Returns:
            ``True`` if the lease was current and is now released;
            ``False`` if it had already been stolen (nothing to do).
        """
        with self._lock:
            if not self.is_current(lease):
                return False
            del self._state["leases"][str(lease.shard)]
            self._persist()
            return True

    def finish(self, lease: Lease) -> bool:
        """Drop a completed shard's lease entry (commit bookkeeping).

        Called by the orchestrator *after* the shard file is durably
        written, inside a :meth:`locked` section that also performed the
        currency check — so only the single winning holder gets here.

        Args:
            lease: The lease whose shard was just committed.

        Returns:
            ``True`` if a lease entry was dropped.
        """
        with self._lock:
            entry = self._state["leases"].pop(str(lease.shard), None)
            self._persist()
            return entry is not None

    def reclaim_stale(self) -> list[int]:
        """Expire every persisted lease immediately (restart recovery).

        A serving process that restarts over an existing checkpoint knows
        no other process is working the queue, so waiting out the lease
        timeout for leases its previous incarnation left behind is pure
        dead time. This marks them all as expired; the next ``claim`` of
        each shard is recorded as a steal.

        Returns:
            The shard indices whose leases were force-expired.
        """
        with self._lock:
            now = float(self._clock())
            stale = []
            for key, entry in self._state["leases"].items():
                entry["heartbeat_at"] = now - self._lease_timeout
                stale.append(int(key))
            if stale:
                self._persist()
            return sorted(stale)

    def snapshot(self) -> dict:
        """Machine-readable queue status (leases, timeouts, pending work).

        Returns:
            A dict with the pending shards, the live lease table and the
            lease timeout.
        """
        with self._lock:
            return {
                "lease_timeout": self._lease_timeout,
                "pending_shards": self._checkpoint.pending_shards(),
                "leases": {int(k): dict(v)
                           for k, v in self._state["leases"].items()},
            }

    # ------------------------------------------------------------- internals
    def _grant(self, shard: int, worker_id: str, *, generation: int,
               stolen: bool, now: float) -> Lease:
        self._state["leases"][str(shard)] = {
            "worker": worker_id,
            "generation": generation,
            "acquired_at": now,
            "heartbeat_at": now,
        }
        self._persist()
        return Lease(shard=shard, worker=worker_id, generation=generation,
                     stolen=stolen)

    def _persist(self) -> None:
        write_json_atomic(self.path, self._state)

    def _load_state(self) -> dict:
        path = self.path
        if not path.exists():
            return {"format": QUEUE_FORMAT_VERSION, "leases": {}}
        try:
            state = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise WorkQueueError(
                f"work-queue state {path} is not valid JSON ({error}); "
                "delete the file — the checkpoint manifest is authoritative "
                "and the queue rebuilds from it",
                path=path,
                hint="delete queue.json; the manifest is authoritative"
            ) from error
        if state.get("format") != QUEUE_FORMAT_VERSION:
            raise WorkQueueError(
                f"work-queue state {path} has format version "
                f"{state.get('format')!r}, this code reads version "
                f"{QUEUE_FORMAT_VERSION}; delete the file — the checkpoint "
                "manifest is authoritative and the queue rebuilds from it",
                path=path,
                hint="delete queue.json; the manifest is authoritative")
        if not isinstance(state.get("leases"), dict):
            raise WorkQueueError(
                f"work-queue state {path} has no lease table; delete the "
                "file — the checkpoint manifest is authoritative and the "
                "queue rebuilds from it",
                path=path,
                hint="delete queue.json; the manifest is authoritative")
        return state
