"""Census-as-a-service: model artifacts, work stealing, batched serving.

The serving layer wraps the reproduction's pipeline for long-running,
production-style use (ROADMAP item 4):

* :mod:`repro.serving.artifact` — persistable trained-model artifacts: the
  flat stacked-forest node tables, kNN/feature configuration and the
  classifier fingerprint in one versioned, checksummed file, so a serving
  process loads a trained classifier in milliseconds and never retrains
  (``python -m repro.model fit/save/load/inspect``).
* :mod:`repro.serving.queue` — a persistent work queue with lease /
  heartbeat / steal semantics generalising the census's fixed shard
  assignment: workers pull shards, a stalled worker's lease expires and is
  stolen, and a stolen shard replays to bit-identical results.
* :mod:`repro.serving.orchestrator` — the work-stealing census orchestrator:
  concurrent workers drain the queue, stream results into the existing JSONL
  checkpoint format, and merge bit-identically to a monolithic run.
* :mod:`repro.serving.service` — :class:`CensusService` with the batched
  ``classify_batch`` endpoint riding the vectorised ``classify_vectors``
  path, loaded straight from an artifact.
* :mod:`repro.serving.schema` — the one stable, versioned JSON schema for
  census reports and classify responses, shared by the CLI and the service.

The full lifecycle is documented in ``docs/SERVING.md``.
"""

from repro.serving.artifact import (
    ModelArtifactError,
    inspect_model,
    load_model,
    save_model,
)
from repro.serving.orchestrator import CensusOrchestrator, WorkerStats
from repro.serving.queue import Lease, WorkQueue, WorkQueueError
from repro.serving.service import CensusService

__all__ = [
    "CensusOrchestrator",
    "CensusService",
    "Lease",
    "ModelArtifactError",
    "WorkQueue",
    "WorkQueueError",
    "WorkerStats",
    "inspect_model",
    "load_model",
    "save_model",
]
