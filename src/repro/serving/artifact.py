"""Persistable trained-model artifacts (the serving layer's model format).

Training the paper's random forest takes seconds to minutes; serving must
not. This module serialises a trained
:class:`~repro.core.classifier.CaaiClassifier` — the flat stacked-forest
node tables (:class:`~repro.ml.decision_tree.FlatTree` arrays), the
classifier/extractor configuration and the classifier fingerprint — into one
versioned artifact file that a serving process loads back in milliseconds.

The on-disk layout is a small self-describing container::

    CAAI-MODEL v1\\n          magic + format version (ASCII line)
    <header-bytes>\\n          decimal length of the JSON header
    {...}                      JSON header (configuration, classes, per-tree
                               array descriptors, payload checksum)
    <payload>                  the raw little-endian array bytes, exactly
                               header["payload_nbytes"] of them

Every load verifies the container end to end — magic, version, header
integrity, payload length and SHA-256 checksum, and finally that the
reconstructed classifier's fingerprint
(:func:`~repro.core.checkpoint.classifier_fingerprint`) equals the one
recorded at save time. Equal fingerprints guarantee bit-identical
classification, so serving from an artifact is byte-identical to
retrain-and-run. Corruption fails loudly with a structured
:class:`ModelArtifactError` (mirroring the checkpoint layer's
:class:`~repro.core.checkpoint.CheckpointError`), never silently.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

import numpy as np

from repro.core.checkpoint import classifier_fingerprint
from repro.core.classifier import CaaiClassifier
from repro.core.features import FeatureExtractor
from repro.ml.decision_tree import DecisionTreeClassifier, FlatTree
from repro.ml.random_forest import RandomForestClassifier

#: Magic token opening every artifact file.
MODEL_ARTIFACT_MAGIC = "CAAI-MODEL"

#: On-disk artifact format version; bumped on any incompatible change.
MODEL_ARTIFACT_VERSION = 1

#: The serialised dtype of every array kind (little-endian, fixed width, so
#: artifacts are portable across platforms; index arrays are restored to the
#: platform's ``intp`` on load).
_ARRAY_DTYPES = {
    "feature": "<i8",
    "threshold": "<f8",
    "left": "<i8",
    "right": "<i8",
    "prediction": "<i8",
    "leaf_class_counts": "<i8",
}

#: The dtype every array kind is restored to in memory (must match what
#: ``fit`` produces, so fingerprints — which hash raw bytes — are identical).
_MEMORY_DTYPES = {
    "feature": np.intp,
    "threshold": np.float64,
    "left": np.intp,
    "right": np.intp,
    "prediction": np.intp,
    "leaf_class_counts": np.int64,
}


class ModelArtifactError(RuntimeError):
    """A model artifact is missing, corrupt, truncated, or version-skewed.

    Besides the human-readable message, carries structured context so
    callers (the CLI, the serving loop) can point at the offending file and
    print a one-line recovery hint without parsing the message text.

    Attributes:
        path: The artifact file the error is about (``None`` when not
            file-specific).
        hint: One-line recovery suggestion (``None`` when the message is
            self-contained).
    """

    def __init__(self, message: str, *, path: str | Path | None = None,
                 hint: str | None = None):
        """Build the error with optional structured context.

        Args:
            message: The full human-readable description.
            path: The offending file, when one is identifiable.
            hint: One-line recovery suggestion.
        """
        super().__init__(message)
        self.path = Path(path) if path is not None else None
        self.hint = hint


_REFIT_HINT = "re-fit the artifact (python -m repro.model fit)"


def save_model(classifier: CaaiClassifier, path: str | Path, *,
               metadata: dict | None = None) -> dict:
    """Serialise a trained classifier to a versioned artifact file.

    Args:
        classifier: A trained :class:`~repro.core.classifier.CaaiClassifier`.
        path: Destination file (parent directories are created).
        metadata: Optional free-form JSON-serialisable provenance (the model
            CLI stores the training settings and fit time here); returned
            verbatim by :func:`inspect_model`.

    Returns:
        The artifact header that was written (fingerprint, sizes, classes).

    Raises:
        ModelArtifactError: If the classifier has not been trained.
    """
    if not classifier.is_trained:
        raise ModelArtifactError(
            "cannot save an untrained classifier; call train() first (or "
            "use python -m repro.model fit)",
            hint="train the classifier before saving")
    path = Path(path)
    forest = classifier.forest
    chunks: list[bytes] = []
    trees = []
    offset = 0
    for tree in forest.trees:
        flat = tree.flat_tree
        arrays = {}
        for name in _ARRAY_DTYPES:
            raw = np.ascontiguousarray(getattr(flat, name),
                                       dtype=_ARRAY_DTYPES[name]).tobytes()
            arrays[name] = {
                "shape": list(getattr(flat, name).shape),
                "offset": offset,
                "nbytes": len(raw),
            }
            chunks.append(raw)
            offset += len(raw)
        trees.append({"classes": tree.classes(), "arrays": arrays})
    payload = b"".join(chunks)
    extractor = classifier.extractor
    header = {
        "format": MODEL_ARTIFACT_VERSION,
        "classifier": {
            "n_trees": classifier.n_trees,
            "max_features": classifier.max_features,
            "confidence_threshold": classifier.confidence_threshold,
            "seed": classifier.seed,
        },
        "extractor": {
            "boundary_search_start_fraction":
                extractor.boundary_search_start_fraction,
            "first_growth_offset": extractor.first_growth_offset,
            "min_ack_loss": extractor.min_ack_loss,
            "max_ack_loss": extractor.max_ack_loss,
        },
        "classes": forest.classes(),
        "trees": trees,
        "fingerprint": classifier_fingerprint(classifier),
        "payload_nbytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "metadata": metadata or {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_suffix(path.suffix + ".tmp")
    with open(temp, "wb") as stream:
        stream.write(f"{MODEL_ARTIFACT_MAGIC} v{MODEL_ARTIFACT_VERSION}\n"
                     .encode("ascii"))
        stream.write(f"{len(header_bytes)}\n".encode("ascii"))
        stream.write(header_bytes)
        stream.write(payload)
        stream.flush()
    temp.replace(path)
    return header


def load_model(path: str | Path) -> CaaiClassifier:
    """Load a trained classifier back from an artifact file, verified.

    The reconstructed classifier's fingerprint is recomputed and compared to
    the one recorded at save time, so a successful load *guarantees* the
    classifier votes bit-identically to the one that was saved.

    Args:
        path: An artifact file written by :func:`save_model`.

    Returns:
        The trained :class:`~repro.core.classifier.CaaiClassifier`.

    Raises:
        ModelArtifactError: On a missing file, wrong magic, version skew, a
            truncated or unparsable header, a short or tampered payload, or
            a fingerprint mismatch after reconstruction.
    """
    path = Path(path)
    header, payload = _read_container(path)
    classifier = _reconstruct(header, payload, path)
    fingerprint = classifier_fingerprint(classifier)
    recorded = header.get("fingerprint")
    if fingerprint != recorded:
        raise ModelArtifactError(
            f"model artifact {path} is internally inconsistent: the "
            f"reconstructed classifier fingerprints as {fingerprint} but the "
            f"artifact records {recorded}. The file was altered after it was "
            f"written — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT)
    return classifier


def inspect_model(path: str | Path) -> dict:
    """Summarise an artifact without reconstructing the classifier.

    Args:
        path: An artifact file written by :func:`save_model`.

    Returns:
        A dict with the format version, fingerprint, configuration,
        classes, tree/node counts, payload size and stored metadata.

    Raises:
        ModelArtifactError: If the container fails any structural check
            (the payload checksum is verified; trees are not rebuilt).
    """
    path = Path(path)
    header, payload = _read_container(path)
    trees = header.get("trees", [])
    nodes = sum(tree["arrays"]["feature"]["shape"][0] for tree in trees)
    return {
        "path": str(path),
        "format": header["format"],
        "fingerprint": header["fingerprint"],
        "classifier": header["classifier"],
        "extractor": header["extractor"],
        "classes": header["classes"],
        "n_trees": len(trees),
        "total_nodes": nodes,
        "payload_nbytes": header["payload_nbytes"],
        "metadata": header.get("metadata", {}),
    }


def timed_load(path: str | Path) -> tuple[CaaiClassifier, float]:
    """Load an artifact and report the wall-clock cost of doing so.

    Args:
        path: An artifact file written by :func:`save_model`.

    Returns:
        ``(classifier, seconds)`` — the loaded classifier and the cold-start
        load time (the number the serving benchmark tripwires against fit
        time).

    Raises:
        ModelArtifactError: As for :func:`load_model`.
    """
    start = time.perf_counter()
    classifier = load_model(path)
    return classifier, time.perf_counter() - start


# -------------------------------------------------------------- internals
def _read_container(path: Path) -> tuple[dict, bytes]:
    """Read and structurally validate the artifact container."""
    if not path.exists():
        raise ModelArtifactError(
            f"no model artifact at {path}; fit and save one first "
            "(python -m repro.model fit --artifact ...)",
            path=path,
            hint="fit and save an artifact first (python -m repro.model fit)")
    raw = path.read_bytes()
    magic_end = raw.find(b"\n")
    magic = raw[:magic_end].decode("ascii", "replace") if magic_end > 0 else ""
    parts = magic.split()
    if len(parts) != 2 or parts[0] != MODEL_ARTIFACT_MAGIC:
        raise ModelArtifactError(
            f"{path} is not a CAAI model artifact (leading bytes "
            f"{raw[:24]!r}); point --artifact at a file written by "
            "python -m repro.model",
            path=path,
            hint="point --artifact at a file written by python -m repro.model")
    version = parts[1].lstrip("v")
    if not version.isdigit() or int(version) != MODEL_ARTIFACT_VERSION:
        raise ModelArtifactError(
            f"model artifact {path} has format version {parts[1]!r}, this "
            f"code reads version v{MODEL_ARTIFACT_VERSION}; re-fit the "
            "artifact with this version of the code",
            path=path,
            hint="re-fit the artifact with this version of the code")
    length_end = raw.find(b"\n", magic_end + 1)
    length_text = raw[magic_end + 1:length_end] if length_end > 0 else b""
    if not length_text.isdigit():
        raise ModelArtifactError(
            f"model artifact {path} has a corrupt header-length line "
            f"({length_text!r}); the file is damaged — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT)
    header_start = length_end + 1
    header_end = header_start + int(length_text)
    if len(raw) < header_end:
        raise ModelArtifactError(
            f"model artifact {path} is truncated inside its header "
            f"(need {header_end} bytes, file has {len(raw)}); the save was "
            f"cut short — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT)
    try:
        header = json.loads(raw[header_start:header_end].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ModelArtifactError(
            f"model artifact {path} has an unparsable header ({error}); the "
            f"file is damaged — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT) from error
    payload = raw[header_end:]
    try:
        expected_nbytes = int(header["payload_nbytes"])
        expected_sha = header["payload_sha256"]
        header["format"], header["fingerprint"], header["classes"]
        header["classifier"], header["extractor"], header["trees"]
    except (KeyError, TypeError, ValueError) as error:
        raise ModelArtifactError(
            f"model artifact {path} header is missing required fields "
            f"({error!r}); the file is damaged — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT) from error
    if len(payload) < expected_nbytes:
        raise ModelArtifactError(
            f"model artifact {path} is truncated: the header declares "
            f"{expected_nbytes} payload bytes but only {len(payload)} are "
            f"present. The save was cut short — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT)
    if len(payload) > expected_nbytes:
        raise ModelArtifactError(
            f"model artifact {path} carries {len(payload) - expected_nbytes} "
            f"bytes of trailing garbage after the declared payload; the file "
            f"was appended to — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT)
    digest = hashlib.sha256(payload).hexdigest()
    if digest != expected_sha:
        raise ModelArtifactError(
            f"model artifact {path} payload checksum mismatch (stored "
            f"{expected_sha}, computed {digest}); the node tables were "
            f"tampered with or bit-rotted — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT)
    return header, payload


def _reconstruct(header: dict, payload: bytes, path: Path) -> CaaiClassifier:
    """Rebuild the classifier from a validated container."""
    try:
        trees = []
        for entry in header["trees"]:
            arrays = {}
            for name, serialised in _ARRAY_DTYPES.items():
                descriptor = entry["arrays"][name]
                start = int(descriptor["offset"])
                stop = start + int(descriptor["nbytes"])
                flat = np.frombuffer(payload[start:stop], dtype=serialised)
                shape = tuple(int(d) for d in descriptor["shape"])
                arrays[name] = np.ascontiguousarray(
                    flat.reshape(shape).astype(_MEMORY_DTYPES[name]))
            trees.append(DecisionTreeClassifier.from_flat_tree(
                FlatTree(**arrays), entry["classes"],
                max_features=header["classifier"]["max_features"]))
        forest = RandomForestClassifier.from_fitted_trees(
            trees, header["classes"],
            max_features=int(header["classifier"]["max_features"]),
            seed=int(header["classifier"]["seed"]))
        extractor = FeatureExtractor(**header["extractor"])
        return CaaiClassifier.from_trained_forest(
            forest,
            confidence_threshold=float(
                header["classifier"]["confidence_threshold"]),
            extractor=extractor)
    except ModelArtifactError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ModelArtifactError(
            f"model artifact {path} header describes an invalid forest "
            f"({error!r}); the file is damaged — {_REFIT_HINT}",
            path=path, hint=_REFIT_HINT) from error
