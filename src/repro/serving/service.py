"""The batched classification service riding a persisted model artifact.

:class:`CensusService` is the serving-side face of the classifier: load a
trained model from an artifact file (milliseconds, no retraining), then
answer batched classification requests through the forest's vectorised
``classify_vectors`` path and emit responses in the stable JSON schema
(:mod:`repro.serving.schema`). ``python -m repro.serve`` wires a service and
a work-stealing orchestrator together into the long-running census loop.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.classifier import CaaiClassifier, Identification
from repro.core.checkpoint import classifier_fingerprint
from repro.serving.artifact import timed_load
from repro.serving.schema import classify_batch_payload


class CensusService:
    """Batched classification over a loaded (not retrained) classifier."""

    def __init__(self, classifier: CaaiClassifier, *,
                 source: dict | None = None):
        """Wrap a trained classifier for serving.

        Args:
            classifier: A trained :class:`~repro.core.classifier.CaaiClassifier`.
            source: Optional provenance dict echoed into every response
                payload (artifact path, fingerprint, ...).

        Raises:
            ValueError: If the classifier is not trained.
        """
        if not classifier.is_trained:
            raise ValueError("CensusService needs a trained classifier; "
                             "load one from an artifact or train first")
        self._classifier = classifier
        self._source = source
        self._load_seconds: float | None = None

    @classmethod
    def from_artifact(cls, path: str | Path) -> "CensusService":
        """Load a service straight from a model artifact file.

        Args:
            path: The artifact written by :func:`repro.serving.artifact.save_model`.

        Returns:
            A ready service whose responses carry the artifact path and
            fingerprint as provenance.

        Raises:
            repro.serving.artifact.ModelArtifactError: If the artifact is
                missing, corrupt, tampered with, or version-skewed.
        """
        classifier, seconds = timed_load(path)
        service = cls(classifier, source={
            "artifact": str(path),
            "fingerprint": classifier_fingerprint(classifier),
        })
        service._load_seconds = seconds
        return service

    # ------------------------------------------------------------ properties
    @property
    def classifier(self) -> CaaiClassifier:
        """The wrapped trained classifier."""
        return self._classifier

    @property
    def source(self) -> dict | None:
        """Provenance echoed into response payloads (``None`` if unset)."""
        return self._source

    @property
    def load_seconds(self) -> float | None:
        """Artifact load time when built via :meth:`from_artifact`."""
        return self._load_seconds

    # ------------------------------------------------------------- endpoints
    def classify_batch(self, vectors, w_timeout) -> list[Identification]:
        """Classify a batch of feature vectors in one vectorised pass.

        Args:
            vectors: A sequence of :class:`~repro.core.features.FeatureVector`
                or an ``(n_samples, n_features)`` matrix.
            w_timeout: One value for the whole batch, or one per vector.

        Returns:
            One :class:`~repro.core.classifier.Identification` per vector,
            in request order — identical to what the census pipeline's
            classify step would produce for the same inputs.
        """
        return self._classifier.classify_vectors(vectors, w_timeout)

    def classify_batch_payload(self, vectors, w_timeout) -> dict:
        """Classify a batch and wrap it in the stable response schema.

        Args:
            vectors: As for :meth:`classify_batch`.
            w_timeout: As for :meth:`classify_batch`.

        Returns:
            The ``caai-classify-batch`` payload
            (:func:`repro.serving.schema.classify_batch_payload`) with this
            service's provenance attached.
        """
        return classify_batch_payload(self.classify_batch(vectors, w_timeout),
                                      source=self._source)
