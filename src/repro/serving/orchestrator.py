"""Work-stealing census orchestrator: concurrent workers drain a queue.

:class:`CensusOrchestrator` generalises the census's fixed shard loop
(:meth:`repro.core.census.CensusRunner._run_pending_shards`) into a pool of
worker threads pulling shards from a persistent :class:`~repro.serving.queue.WorkQueue`.
Each worker claims a lease, measures the shard through the runner's normal
probe/classify pipeline, and commits the result into the existing JSONL
checkpoint format — so resume, merge and every downstream consumer stay
bit-identical to the monolithic and fixed-shard paths.

Determinism under stealing: shard outcomes are a pure function of the census
seed and the shard's population indices (per-server streams come from
:func:`repro.parallel.task_seeds`), so a shard that is measured by worker A,
abandoned when A dies, stolen by worker B and measured again produces the
exact same bytes. The commit protocol makes the race harmless:

1. the worker measures the shard *outside* any lock (the slow part);
2. it takes the queue lock, re-checks its lease is still current, writes the
   shard file + flips the manifest, and drops the lease;
3. a stale holder (stolen lease) discards its outcomes; a
   duplicate-completion :class:`~repro.core.checkpoint.CheckpointError`
   from a lost write race is swallowed for the same reason — the winner
   wrote identical bytes.

Fault injection lives at the **lease** level: an orchestrator-level
:class:`~repro.faults.plan.FaultPlan` with ``worker_death`` specs scoped
``"lease:<shard>"`` kills a worker after it claimed the lease (before any
probing), leaving the lease to expire and be stolen. The plan never touches
the runner's config, so the census fingerprint and every probe stream are
identical to a plan-free run — which is exactly what the crash/steal test
matrix asserts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.census import CensusReport, CensusRunner
from repro.core.checkpoint import (
    MANIFEST_NAME,
    CensusCheckpoint,
    CheckpointError,
    shard_assignments,
)
from repro.web.population import ServerPopulation
from repro.faults.plan import FaultPlan
from repro.parallel import task_seeds
from repro.serving.queue import DEFAULT_LEASE_TIMEOUT, Lease, WorkQueue


class _LeaseDeath(Exception):
    """Injected worker death while holding a lease (fault plan)."""


@dataclass
class WorkerStats:
    """What one orchestrator worker did during a run.

    Attributes:
        worker: The worker's identifier (``"worker-N"``).
        completed: Shards this worker measured and committed.
        stolen: Shards this worker claimed by stealing an expired lease.
        discarded: Shards measured but discarded because the lease was
            stolen (or the write race lost) before commit.
        died: Whether an injected lease death terminated the worker.
    """

    worker: str
    completed: list[int] = field(default_factory=list)
    stolen: list[int] = field(default_factory=list)
    discarded: list[int] = field(default_factory=list)
    died: bool = False


class CensusOrchestrator:
    """Drains a checkpoint's pending shards with work-stealing workers."""

    def __init__(self, runner: CensusRunner, population: ServerPopulation,
                 checkpoint_dir, *, num_shards: int = 8,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 settings: dict | None = None, clock=time.time,
                 on_shard=None, fault_plan: FaultPlan | None = None,
                 poll_interval: float = 0.05):
        """Create or attach to a checkpoint and build its work queue.

        Args:
            runner: The census runner (trained classifier + config); its
                seed keys shard assignment and every probe stream.
            population: The server population the checkpoint covers.
            checkpoint_dir: Checkpoint directory. A fresh one is created
                when no manifest exists; an existing one is attached to
                (after fingerprint verification) and its remaining shards
                drained — interrupt → resume.
            num_shards: Shard count for a fresh checkpoint (ignored when
                attaching; the manifest's count wins).
            lease_timeout: Seconds without a heartbeat before a worker's
                lease is stolen.
            settings: Free-form dict stored in a fresh manifest.
            clock: Time source shared with the queue; tests inject a fake
                clock to drive steals deterministically.
            on_shard: Optional callback ``on_shard(shard_index, outcomes)``
                invoked after each shard commits — the serving CLI streams
                incremental results through it. Called with the queue lock
                released.
            fault_plan: Orchestrator-level fault plan; ``worker_death``
                specs scoped ``"lease:<shard>"`` kill a worker right after
                it claims that lease (see module docstring). Never touches
                the runner's probe streams.
            poll_interval: Seconds an idle worker sleeps between claim
                attempts.

        Raises:
            repro.core.checkpoint.CheckpointError: If an existing
                checkpoint's fingerprint does not match this runner +
                population.
        """
        self._runner = runner
        self._population = population
        self._records = CensusRunner._records(population)
        self._clock = clock
        self._on_shard = on_shard
        self._fault_plan = fault_plan
        self._poll_interval = float(poll_interval)
        fingerprint = runner._fingerprint(population)
        if (Path(checkpoint_dir) / MANIFEST_NAME).exists():
            # Attach: a corrupt or mismatched manifest fails loudly here.
            self._checkpoint = CensusCheckpoint.open(checkpoint_dir)
            self._checkpoint.verify_fingerprint(fingerprint)
        else:
            self._checkpoint = CensusCheckpoint.create(
                checkpoint_dir, seed=runner.config.seed,
                num_shards=num_shards, fingerprint=fingerprint,
                population_size=len(self._records), settings=settings)
        self._queue = WorkQueue(self._checkpoint,
                                lease_timeout=lease_timeout, clock=clock)
        self._assignments = shard_assignments(
            [record.profile.server_id for record in self._records],
            self._checkpoint.seed, self._checkpoint.num_shards)
        self._seeds = task_seeds(runner.config.seed, len(self._records))
        self._stats: dict[str, WorkerStats] = {}
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------ properties
    @property
    def checkpoint(self) -> CensusCheckpoint:
        """The checkpoint the orchestrator commits shards into."""
        return self._checkpoint

    @property
    def queue(self) -> WorkQueue:
        """The work queue coordinating the workers."""
        return self._queue

    def worker_stats(self) -> list[WorkerStats]:
        """Per-worker activity of the most recent :meth:`run`.

        Returns:
            One :class:`WorkerStats` per worker that participated, in
            worker-name order.
        """
        with self._stats_lock:
            return [self._stats[name] for name in sorted(self._stats)]

    # ------------------------------------------------------------------- run
    def run(self, *, workers: int = 2,
            reclaim_stale: bool = True) -> CensusReport:
        """Drain every pending shard with ``workers`` concurrent workers.

        Workers claim leases, measure shards through the runner's pipeline
        and commit them; a worker killed by the fault plan abandons its
        lease, which expires and is stolen by a surviving worker (the
        supervisor spawns a replacement when every worker died). Returns
        once all shards are complete.

        Args:
            workers: Number of concurrent worker threads (>= 1).
            reclaim_stale: Expire leases left behind by a previous process
                immediately instead of waiting out the lease timeout.

        Returns:
            The merged :class:`~repro.core.census.CensusReport`,
            bit-identical to a monolithic ``runner.run(population)``.

        Raises:
            ValueError: If ``workers`` < 1.
            RuntimeError: If a round of workers exits with shards still
                pending and no progress made (should be unreachable: leases
                expire, so work is always eventually claimable).
        """
        if workers < 1:
            raise ValueError("workers must be at least 1")
        with self._stats_lock:
            self._stats = {}
        if reclaim_stale:
            self._queue.reclaim_stale()
        spawned = 0
        while self._checkpoint.pending_shards():
            before = len(self._checkpoint.completed_shards())
            threads = []
            for _ in range(workers):
                name = f"worker-{spawned}"
                spawned += 1
                stats = WorkerStats(worker=name)
                with self._stats_lock:
                    self._stats[name] = stats
                thread = threading.Thread(target=self._worker_loop,
                                          args=(stats,), name=name,
                                          daemon=True)
                threads.append(thread)
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            progress = len(self._checkpoint.completed_shards()) - before
            deaths = any(self._stats[t.name].died for t in threads)
            if self._checkpoint.pending_shards() and not progress and not deaths:
                raise RuntimeError(
                    "orchestrator stalled: workers exited with shards "
                    f"{self._checkpoint.pending_shards()} still pending and "
                    "no progress made")
        return self._checkpoint.merge_report(
            expected_size=len(self._records))

    # ------------------------------------------------------------- internals
    def _worker_loop(self, stats: WorkerStats) -> None:
        """Claim-measure-commit until no pending work remains (one worker)."""
        idle_since = None
        idle_limit = max(2.0 * self._queue.lease_timeout, 1.0)
        while True:
            if not self._checkpoint.pending_shards():
                return
            lease = self._queue.claim(stats.worker)
            if lease is None:
                # Everything pending is leased to someone else; linger long
                # enough to steal from a dead holder, then give up.
                now = self._clock()
                idle_since = now if idle_since is None else idle_since
                if now - idle_since >= idle_limit:
                    return
                time.sleep(self._poll_interval)
                continue
            idle_since = None
            if lease.stolen:
                stats.stolen.append(lease.shard)
            try:
                self._work_one(lease, stats)
            except _LeaseDeath:
                # The injected death abandons the lease: no release, no
                # heartbeat — it expires and a surviving worker steals it.
                stats.died = True
                return

    def _work_one(self, lease: Lease, stats: WorkerStats) -> None:
        """Measure one leased shard and commit it if the lease held."""
        if (self._fault_plan is not None
                and self._fault_plan.lease_death_fires(lease.shard,
                                                       lease.generation)):
            raise _LeaseDeath(f"injected death holding lease on shard "
                              f"{lease.shard} (generation {lease.generation})")
        indices = self._assignments[lease.shard]
        outcomes = self._runner.measure_indices(self._records, indices,
                                                seeds=self._seeds)
        if not self._queue.heartbeat(lease):
            stats.discarded.append(lease.shard)
            return
        committed = False
        with self._queue.locked():
            if not self._queue.is_current(lease):
                stats.discarded.append(lease.shard)
                return
            try:
                self._checkpoint.write_shard(lease.shard,
                                             list(zip(indices, outcomes)))
            except CheckpointError:
                # Lost a write race despite the lease check (e.g. another
                # process sharing the directory). The winner wrote identical
                # bytes, so losing is harmless.
                stats.discarded.append(lease.shard)
            else:
                committed = True
                stats.completed.append(lease.shard)
            finally:
                self._queue.finish(lease)
        if committed and self._on_shard is not None:
            self._on_shard(lease.shard, outcomes)
