"""The one stable JSON schema for census reports and classify responses.

Before the serving layer, ``python -m repro.census --json`` emitted an
ad-hoc payload whose shape drifted with the report object; the serving
endpoints would have grown a second, subtly different shape. This module is
the single source of truth instead: the CLI's ``--json`` files and every
:class:`~repro.serving.service.CensusService` response are built here, carry
an explicit ``schema`` envelope (name + version), and are pinned by snapshot
tests. Consumers dispatch on the envelope; any incompatible change bumps the
version.

Census report payload (``caai-census-report`` v1), keys always present and
sorted when serialised:

* ``schema`` — ``{"name": "caai-census-report", "version": 1}``;
* ``servers`` — total population size;
* ``valid_count`` / ``valid_fraction`` — servers with a usable trace;
* ``category_percentages`` — Table IV overall column (percent of valid);
* ``invalid_reason_shares`` — fraction of invalid servers per reason;
* ``status_counts`` — outcome-taxonomy buckets (always included, unlike the
  legacy payload which omitted them for fault-free runs);
* ``retry_total`` — extra probe attempts spent on retries;
* ``resilience`` — :meth:`~repro.core.results.CensusReport.resilience_summary`
  when any outcome carries fault accounting, else ``None``;
* ``source`` — free-form provenance (e.g. ``{"artifact": ..., "checkpoint":
  ...}``), ``None`` when not supplied;
* ``outcomes`` — per-server dicts, exactly
  :meth:`~repro.core.results.ServerOutcome.to_json_dict` (the checkpoint
  wire format, so report files and shard files agree byte-for-byte on every
  outcome).
"""

from __future__ import annotations

from repro.core.classifier import Identification
from repro.core.results import CensusReport

#: Envelope name/version of census report payloads.
CENSUS_REPORT_SCHEMA = {"name": "caai-census-report", "version": 1}

#: Envelope name/version of classify-batch payloads.
CLASSIFY_SCHEMA = {"name": "caai-classify-batch", "version": 1}


def census_report_payload(report: CensusReport, *,
                          source: dict | None = None) -> dict:
    """Build the stable JSON payload for a census report.

    Args:
        report: The aggregated census report.
        source: Optional provenance dict (artifact path and fingerprint,
            checkpoint directory, ...), stored verbatim under ``source``.

    Returns:
        A JSON-native dict with every documented key present (see module
        docstring); serialise with ``sort_keys=True`` for stable bytes.
    """
    return {
        "schema": dict(CENSUS_REPORT_SCHEMA),
        "servers": len(report),
        "valid_count": len(report.valid_outcomes),
        "valid_fraction": report.valid_fraction(),
        "category_percentages": report.category_percentages(),
        "invalid_reason_shares": report.invalid_reason_shares(),
        "status_counts": report.status_counts(),
        "retry_total": report.retry_total(),
        "resilience": (report.resilience_summary()
                       if report.has_fault_accounting() else None),
        "source": source,
        "outcomes": [outcome.to_json_dict() for outcome in report.outcomes],
    }


def identification_payload(identification: Identification) -> dict:
    """One classify result as a JSON-native dict.

    Args:
        identification: A classifier output.

    Returns:
        A dict with ``label`` (the reported label, ``"unsure"`` when below
        the confidence threshold), ``raw_label`` (the forest's top vote),
        ``confidence``, ``unsure`` and ``w_timeout``.
    """
    return {
        "label": identification.reported_label,
        "raw_label": identification.label,
        "confidence": identification.confidence,
        "unsure": identification.unsure,
        "w_timeout": identification.w_timeout,
    }


def classify_batch_payload(identifications: list[Identification], *,
                           source: dict | None = None) -> dict:
    """The stable JSON payload for a batched classify response.

    Args:
        identifications: Classifier outputs, in request order.
        source: Optional provenance dict (artifact path and fingerprint).

    Returns:
        A dict with the ``schema`` envelope, ``count``, ``source`` and one
        ``results`` entry per input (see :func:`identification_payload`).
    """
    return {
        "schema": dict(CLASSIFY_SCHEMA),
        "count": len(identifications),
        "source": source,
        "results": [identification_payload(identification)
                    for identification in identifications],
    }
