"""CI check: every relative link in the documentation resolves.

Scans ``README.md`` and ``docs/*.md`` for Markdown links **and inline-code
path references** (backtick spans that name a repository path, e.g.
```` `src/repro/experiments/` ````), and fails with the full offender list
if any of them points at a file that does not exist. External
(``http``/``https``/``mailto``) links are not fetched — CI must not depend
on the network.

Usage::

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` Markdown links; images share the syntax.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backtick spans whose content is a repository path: they must start with
#: one of the repo's top-level directories and contain only path characters.
#: Spans with glob characters or spaces (shell commands) are not checked.
CODE_PATH_PATTERN = re.compile(
    r"`((?:src|docs|tests|tools|benchmarks|examples)/[A-Za-z0-9_./-]+)`")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def documentation_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{line_number}: broken "
                    f"link {target!r} (no such file {relative!r})")
        for match in CODE_PATH_PATTERN.finditer(line):
            reference = match.group(1)
            # Inline-code paths are repo-root relative regardless of which
            # document mentions them.
            if not (REPO_ROOT / reference).exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{line_number}: broken "
                    f"inline-code path reference `{reference}` "
                    "(no such file in the repository)")
    return problems


def main() -> int:
    files = documentation_files()
    if len(files) < 2:
        print("error: expected README.md plus docs/*.md, found "
              f"{[str(f) for f in files]}", file=sys.stderr)
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"\n{len(problems)} broken documentation link(s)",
              file=sys.stderr)
        return 1
    print(f"OK: all relative links in {len(files)} documentation files "
          "resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
